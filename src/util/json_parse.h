// Minimal recursive-descent JSON parser (RFC 8259 subset: UTF-8 text, no
// surrogate-pair decoding beyond pass-through). Complements JsonWriter so HAR
// archives exported by the library can be re-imported and inspected — the
// same round trip the paper's pipeline performs on Chrome HAR files.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace h3cdn::util {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

/// A parsed JSON document node. Value-semantic; object members are kept in
/// a sorted map (key order is not significant for our uses).
class JsonValue {
 public:
  using Storage =
      std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(JsonArray a) : value_(std::move(a)) {}
  JsonValue(JsonObject o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(value_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(value_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] double as_number() const { return std::get<double>(value_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(value_); }
  [[nodiscard]] const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  [[nodiscard]] const JsonObject& as_object() const { return std::get<JsonObject>(value_); }

  /// Object member access; returns nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Convenience typed getters with defaults.
  [[nodiscard]] double number_or(const std::string& key, double fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key, std::string fallback) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;

 private:
  Storage value_;
};

struct JsonParseError {
  std::string message;
  std::size_t offset = 0;  // byte offset in the input
};

/// Parses a complete JSON document. Returns nullopt and fills `error` (if
/// given) on malformed input. Trailing whitespace is allowed; trailing
/// garbage is an error.
std::optional<JsonValue> parse_json(std::string_view text, JsonParseError* error = nullptr);

}  // namespace h3cdn::util
