// Least-squares line fitting. Fig. 9 of the paper fits PLT-reduction vs.
// number-of-CDN-resources lines per loss rate and compares their slopes
// (0.80 / 1.42 / 2.15 for 0% / 0.5% / 1% loss); we reproduce the same fit.
#pragma once

#include <cstddef>
#include <vector>

namespace h3cdn::util {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;          // coefficient of determination
  std::size_t n = 0;        // number of points used
};

/// Ordinary least squares y = slope*x + intercept. Requires xs.size() ==
/// ys.size(). With fewer than two distinct x values the slope is 0 and the
/// intercept is the mean of ys.
LinearFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys);

/// Robust variant: bins points by x into `bins` equal-population buckets,
/// fits the line through bucket means. This is how scatter plots with heavy
/// noise (like Fig. 9) are typically summarized.
LinearFit fit_line_binned(const std::vector<double>& xs, const std::vector<double>& ys,
                          std::size_t bins);

}  // namespace h3cdn::util
