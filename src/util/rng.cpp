#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace h3cdn::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

constexpr double kTwoPi = 6.283185307179586476925286766559;

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::initializer_list<std::uint64_t> parts) {
  std::uint64_t state = 0x8f1bbcdcbfa53e0bULL;
  std::uint64_t acc = 0;
  for (std::uint64_t p : parts) {
    state ^= p + 0x9e3779b97f4a7c15ULL + (acc << 6) + (acc >> 2);
    acc = splitmix64(state);
  }
  return acc;
}

std::uint64_t hash_component(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  H3CDN_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  H3CDN_EXPECTS(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Lemire's multiply-shift with rejection for unbiased bounded integers.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto l = static_cast<std::uint64_t>(m);
  if (l < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (l < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * range;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  H3CDN_EXPECTS(mean > 0.0);
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; one value per call keeps the generator stream position a
  // deterministic function of the call count.
  double u1 = uniform();
  const double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(kTwoPi * u2);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::lognormal_median(double median, double sigma) {
  H3CDN_EXPECTS(median > 0.0);
  return lognormal(std::log(median), sigma);
}

double Rng::pareto(double x_m, double alpha) {
  H3CDN_EXPECTS(x_m > 0.0 && alpha > 0.0);
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return x_m / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  H3CDN_EXPECTS(n > 0);
  double norm = 0.0;
  for (std::size_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(static_cast<double>(i), s);
  const double u = uniform() * norm;
  double acc = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    if (u < acc) return i - 1;
  }
  return n - 1;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    H3CDN_EXPECTS(w >= 0.0);
    total += w;
  }
  H3CDN_EXPECTS(total > 0.0);
  const double u = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  H3CDN_EXPECTS(k <= n);
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher–Yates: after k swaps the first k entries are the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::fork(std::uint64_t tag) const { return Rng{derive_seed({seed_, tag, 0x5eedf0c5ULL})}; }

Rng Rng::fork(std::string_view tag) const { return fork(hash_component(tag)); }

}  // namespace h3cdn::util
