// Minimal streaming JSON writer, used to export HAR-equivalent archives
// (the paper's raw artifact is Chrome HAR files) without any third-party
// dependency. Write-only by design: the library consumes its own in-memory
// structures for analysis and emits JSON purely for interoperability.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace h3cdn::util {

/// Builds a JSON document incrementally. Enforces well-formedness with
/// an explicit context stack; misuse aborts (H3CDN_EXPECTS).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes a key inside an object; must be followed by a value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Convenience: key + value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// The finished document. All containers must be closed.
  [[nodiscard]] const std::string& str() const;

 private:
  enum class Ctx { Object, Array };
  void pre_value();
  void escape_into(std::string_view s);

  std::string out_;
  std::vector<Ctx> stack_;
  std::vector<bool> has_items_;  // parallel to stack_
  bool expecting_value_ = false; // a key was written, value must follow
};

}  // namespace h3cdn::util
