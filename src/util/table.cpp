#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace h3cdn::util {

AsciiTable::AsciiTable(std::vector<std::string> header) : header_(std::move(header)) {
  H3CDN_EXPECTS(!header_.empty());
}

void AsciiTable::add_row(std::vector<std::string> row) {
  H3CDN_EXPECTS(row.size() <= header_.size());
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string AsciiTable::to_string(int indent) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  const std::string pad(static_cast<std::size_t>(indent), ' ');
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = pad;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size()) line += std::string(widths[c] - row[c].size() + 2, ' ');
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out += pad + std::string(total, '-') + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_pct(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", digits, fraction * 100.0);
  return buf;
}

}  // namespace h3cdn::util
