// Core time and identifier types shared across the h3cdn libraries.
//
// All simulated time is kept as integral microseconds. Integral time keeps
// the discrete-event simulator deterministic across platforms (no FP drift in
// the event queue) while microsecond resolution is far below the ~hundreds of
// microseconds of the finest modelled effect (packet serialization).
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>

namespace h3cdn {

/// Length of a simulated interval, in integral microseconds.
using Duration = std::chrono::duration<std::int64_t, std::micro>;

/// Instant on the simulated clock: microseconds since simulation start.
/// Kept as a Duration on purpose — the simulation epoch is always zero.
using TimePoint = Duration;

/// Convenience literal-style constructors.
constexpr Duration usec(std::int64_t v) { return Duration{v}; }
constexpr Duration msec(std::int64_t v) { return Duration{v * 1000}; }
constexpr Duration sec(std::int64_t v) { return Duration{v * 1'000'000}; }

/// Converts a simulated duration to fractional milliseconds (for reporting).
constexpr double to_ms(Duration d) { return static_cast<double>(d.count()) / 1000.0; }

/// Converts a simulated duration to fractional seconds (for reporting).
constexpr double to_sec(Duration d) { return static_cast<double>(d.count()) / 1e6; }

/// Builds a duration from fractional milliseconds, rounding to microseconds.
inline Duration from_ms(double ms) { return Duration{std::llround(ms * 1000.0)}; }

/// Builds a duration from fractional seconds, rounding to microseconds.
inline Duration from_sec(double s) { return Duration{std::llround(s * 1e6)}; }

}  // namespace h3cdn
