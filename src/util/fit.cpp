#include "util/fit.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"
#include "util/stats.h"

namespace h3cdn::util {

LinearFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys) {
  H3CDN_EXPECTS(xs.size() == ys.size());
  LinearFit fit;
  fit.n = xs.size();
  if (xs.empty()) return fit;

  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double pred = fit.slope * xs[i] + fit.intercept;
      ss_res += (ys[i] - pred) * (ys[i] - pred);
    }
    fit.r2 = 1.0 - ss_res / syy;
  }
  return fit;
}

LinearFit fit_line_binned(const std::vector<double>& xs, const std::vector<double>& ys,
                          std::size_t bins) {
  H3CDN_EXPECTS(xs.size() == ys.size());
  H3CDN_EXPECTS(bins > 0);
  if (xs.size() <= bins) return fit_line(xs, ys);

  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });

  std::vector<double> bx, by;
  bx.reserve(bins);
  by.reserve(bins);
  const std::size_t per = xs.size() / bins;
  for (std::size_t b = 0; b < bins; ++b) {
    const std::size_t lo = b * per;
    const std::size_t hi = (b + 1 == bins) ? xs.size() : (b + 1) * per;
    double sx = 0.0, sy = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      sx += xs[order[i]];
      sy += ys[order[i]];
    }
    const auto n = static_cast<double>(hi - lo);
    bx.push_back(sx / n);
    by.push_back(sy / n);
  }
  auto fit = fit_line(bx, by);
  fit.n = xs.size();
  return fit;
}

}  // namespace h3cdn::util
