// Deterministic random number generation for the simulator.
//
// Every stochastic decision in the study (packet loss draws, resource sizes,
// provider assignment, server think times, ...) flows through an Rng seeded
// from an explicit hierarchy of (study seed, site, probe, purpose). Two runs
// with the same configuration therefore produce byte-identical results, which
// is what makes the reproduction auditable. std::mt19937 and the standard
// distributions are *not* used because their output is not guaranteed to be
// identical across standard library implementations; xoshiro256++ plus our own
// distribution transforms is.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string_view>
#include <vector>

namespace h3cdn::util {

/// SplitMix64 step; used for seeding and for hashing seed components.
std::uint64_t splitmix64(std::uint64_t& state);

/// Combines an arbitrary list of 64-bit components into one well-mixed seed.
/// Deterministic and order-sensitive: derive_seed({a,b}) != derive_seed({b,a}).
std::uint64_t derive_seed(std::initializer_list<std::uint64_t> parts);

/// Hashes a string into a 64-bit seed component (FNV-1a).
std::uint64_t hash_component(std::string_view s);

/// xoshiro256++ engine with explicit, portable distribution transforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p);

  /// Exponential with the given mean (mean > 0).
  double exponential(double mean);

  /// Standard normal via Box–Muller (stateless variant; uses two draws).
  double normal(double mean, double stddev);

  /// Log-normal parameterized by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma);

  /// Log-normal parameterized by the desired median and sigma:
  /// median = exp(mu)  =>  mu = ln(median).
  double lognormal_median(double median, double sigma);

  /// Pareto (type I) with scale x_m and shape alpha.
  double pareto(double x_m, double alpha);

  /// Zipf-distributed rank in [0, n) with exponent s (s >= 0). Linear-time
  /// inversion over precomputed weights is avoided; uses rejection-free CDF
  /// walk which is fine for the small n (tens of providers) used here.
  std::size_t zipf(std::size_t n, double s);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derives a child generator; children with distinct tags are independent.
  Rng fork(std::uint64_t tag) const;
  Rng fork(std::string_view tag) const;

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_ = 0;  // retained for fork()
};

}  // namespace h3cdn::util
