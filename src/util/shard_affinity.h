// Executable single-shard ownership check.
//
// The shard-parallel study engine (core/probe_run.h) gives every
// (vantage, probe, mode) run its own Simulator, Environment, TLS session
// ticket store and DNS cache; none of that mutable state may be touched by
// another pool worker. ShardAffinity turns that ownership rule into an
// assertion: the first access binds the calling thread, every later access
// must come from the same one. A violation means shard state leaked across
// the pool — a data race and a determinism bug — so it aborts immediately
// instead of letting the run limp on with corrupted measurements.
//
// The check is a single relaxed atomic op, cheap enough to stay on in
// release builds alongside the other H3CDN_* checks.
#pragma once

#include <atomic>
#include <thread>

#include "util/check.h"

namespace h3cdn::util {

class ShardAffinity {
 public:
  /// Binds the calling thread on first use; aborts if any other thread
  /// touches the owning object afterwards.
  void assert_same_shard() const {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};  // std::thread::id{} == not-a-thread: unbound
    if (owner_.compare_exchange_strong(expected, self, std::memory_order_relaxed)) return;
    H3CDN_ASSERT(expected == self && "shard-local object touched from a second thread");
  }

 private:
  // relaxed suffices: the id is only compared, never used to publish data.
  mutable std::atomic<std::thread::id> owner_{};
};

}  // namespace h3cdn::util
