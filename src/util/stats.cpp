#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace h3cdn::util {

Summary summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  double sum = 0.0;
  for (double v : values) sum += v;
  s.sum = sum;
  s.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double sq = 0.0;
    for (double v : values) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  s.p25 = quantile_sorted(values, 0.25);
  s.median = quantile_sorted(values, 0.50);
  s.p75 = quantile_sorted(values, 0.75);
  s.p90 = quantile_sorted(values, 0.90);
  s.p99 = quantile_sorted(values, 0.99);
  return s;
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  H3CDN_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return quantile_sorted(values, q);
}

std::vector<DistPoint> cdf(std::vector<double> values) {
  std::vector<DistPoint> out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Collapse runs of equal values to the last index of the run.
    if (i + 1 < values.size() && values[i + 1] == values[i]) continue;
    out.push_back({values[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

std::vector<DistPoint> ccdf(std::vector<double> values) {
  auto points = cdf(std::move(values));
  for (auto& p : points) p.y = 1.0 - p.y;
  return points;
}

double fraction_above(const std::vector<double>& values, double threshold) {
  if (values.empty()) return 0.0;
  std::size_t n = 0;
  for (double v : values)
    if (v > threshold) ++n;
  return static_cast<double>(n) / static_cast<double>(values.size());
}

double fraction_at_or_below(const std::vector<double>& values, double threshold) {
  if (values.empty()) return 0.0;
  return 1.0 - fraction_above(values, threshold);
}

std::vector<std::size_t> histogram(const std::vector<double>& values, double lo, double hi,
                                   std::size_t bins) {
  H3CDN_EXPECTS(bins > 0 && lo < hi);
  std::vector<std::size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double v : values) {
    auto idx = static_cast<std::ptrdiff_t>((v - lo) / width);
    idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(bins) - 1);
    ++counts[static_cast<std::size_t>(idx)];
  }
  return counts;
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  H3CDN_EXPECTS(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double median(std::vector<double> values) { return quantile(std::move(values), 0.5); }

}  // namespace h3cdn::util
