#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace h3cdn::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_jobs();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  H3CDN_EXPECTS(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    H3CDN_EXPECTS(!shutdown_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait();
}

std::size_t ThreadPool::default_jobs() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mutex_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    std::unique_lock<std::mutex> lock(mutex_);
    if (--in_flight_ == 0) all_done_.notify_all();
  }
}

}  // namespace h3cdn::util
