// Discrete-event simulation engine.
//
// One Simulator instance drives one simulated probe's page visits. Events are
// ordered by (time, insertion sequence), so simultaneous events fire in the
// order they were scheduled — this total order is what makes whole-study runs
// bit-reproducible.
//
// Two interchangeable scheduler cores implement that contract
// (docs/SCALING.md):
//
//  * Calendar (default): a calendar queue — a ring of time buckets whose
//    width adapts to the observed event density — over a slab/free-list
//    event arena. Buckets are intrusive chains threaded through the arena
//    slots; the callback lives inline in its slot via SmallFn, so
//    steady-state scheduling performs no per-event heap allocation and pops
//    are O(1) amortized instead of O(log n).
//  * Heap: the reference binary-heap scheduler (the pre-calendar
//    implementation, kept verbatim in spirit: priority queue plus
//    pending/cancelled id sets). Selected with the H3CDN_SIM_HEAP_SCHEDULER=1
//    environment variable or an explicit constructor argument; used for A/B
//    verification — both cores fire events in the identical total order —
//    and as the baseline for the scheduler microbench.
#pragma once

#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/small_fn.h"
#include "util/types.h"

namespace h3cdn::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
/// Calendar core: packs (generation << 32 | arena slot); never zero.
using EventId = std::uint64_t;

/// Deterministic event-queue simulator with a microsecond virtual clock.
class Simulator {
 public:
  enum class Backend { Calendar, Heap };

  /// Backend from the environment: Heap when H3CDN_SIM_HEAP_SCHEDULER is set
  /// to a non-empty, non-"0" value, Calendar otherwise.
  Simulator();
  explicit Simulator(Backend backend);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Backend backend() const { return backend_; }

  /// Current virtual time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `at` (>= now()).
  /// Accepts any void() callable (stored inline for captures <= 48 bytes).
  EventId schedule_at(TimePoint at, SmallFn fn);

  /// Schedules `fn` to run `delay` (>= 0) after now().
  EventId schedule_in(Duration delay, SmallFn fn);

  /// Cancels a pending event. Returns false if it already fired or was
  /// cancelled. Calendar core: removes the entry and recycles its arena slot
  /// immediately, so pending() stays exact with no shadow bookkeeping.
  bool cancel(EventId id);

  /// Runs until the queue drains. Returns the number of events executed.
  std::size_t run();

  /// Runs events with time <= until; leaves later events queued.
  std::size_t run_until(TimePoint until);

  /// True if no runnable (non-cancelled) events remain.
  [[nodiscard]] bool idle() const;

  /// Number of events executed since construction.
  [[nodiscard]] std::size_t events_executed() const { return executed_; }

  /// Number of currently pending (non-cancelled) events. Exact under
  /// arbitrary schedule/cancel/pop interleavings.
  [[nodiscard]] std::size_t pending() const;

 private:
  // --- calendar core: event arena -----------------------------------------
  // One slot per live event. Slots are recycled through a free list; the
  // generation counter in the EventId makes stale handles (fired or
  // cancelled events) fail cancel() without any side table. Each bucket of
  // the calendar is an intrusive singly-linked chain threaded through the
  // slots (`next`), so steady-state schedule/cancel/pop never allocates.
  struct Slot {
    TimePoint at{0};
    std::uint64_t seq = 0;
    std::uint32_t gen = 1;
    std::uint32_t next = kNilSlot;  // next slot in this event's bucket chain
    bool live = false;
    SmallFn fn;
  };
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void calendar_link(std::uint32_t slot);
  /// Unlinks and returns the earliest (at, seq) live slot with at <= bound;
  /// kNilSlot if none qualifies.
  std::uint32_t calendar_pop(TimePoint bound);
  void calendar_resize(std::size_t nbuckets);
  /// Re-derives the bucket width from the live event spread (Brown's
  /// calendar-queue heuristic) and redistributes all entries.
  void calendar_recalibrate();
  [[nodiscard]] std::uint64_t virtual_index(TimePoint at) const {
    return static_cast<std::uint64_t>(at.count()) / width_us_;
  }

  EventId calendar_schedule(TimePoint at, SmallFn fn);
  bool calendar_cancel(EventId id);
  std::size_t calendar_run(TimePoint until);

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint32_t> buckets_;  // chain head per bucket (kNilSlot = empty)
  std::uint64_t width_us_ = 1024;  // bucket width, microseconds
  std::uint64_t base_vi_ = 0;      // virtual bucket index of the current time
  std::size_t live_ = 0;           // pending (non-cancelled) events

  // --- heap core (reference) ----------------------------------------------
  struct HeapEvent {
    TimePoint at{0};
    std::uint64_t seq = 0;
    EventId id = 0;
    SmallFn fn;
  };
  struct HeapLater {
    bool operator()(const HeapEvent& a, const HeapEvent& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  EventId heap_schedule(TimePoint at, SmallFn fn);
  bool heap_cancel(EventId id);
  std::size_t heap_run(TimePoint until);

  std::priority_queue<HeapEvent, std::vector<HeapEvent>, HeapLater> heap_;
  std::unordered_set<EventId> pending_ids_;
  std::unordered_set<EventId> cancelled_;
  EventId next_heap_id_ = 1;

  // --- shared --------------------------------------------------------------
  Backend backend_ = Backend::Calendar;
  TimePoint now_{0};
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
};

}  // namespace h3cdn::sim
