// Discrete-event simulation engine.
//
// One Simulator instance drives one simulated probe's page visits. Events are
// ordered by (time, insertion sequence), so simultaneous events fire in the
// order they were scheduled — this total order is what makes whole-study runs
// bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/types.h"

namespace h3cdn::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
using EventId = std::uint64_t;

/// Deterministic event-queue simulator with a microsecond virtual clock.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `at` (>= now()).
  EventId schedule_at(TimePoint at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` (>= 0) after now().
  EventId schedule_in(Duration delay, std::function<void()> fn);

  /// Cancels a pending event. Returns false if it already fired or was
  /// cancelled. Cancelling is O(1); cancelled entries are skipped on pop.
  bool cancel(EventId id);

  /// Runs until the queue drains. Returns the number of events executed.
  std::size_t run();

  /// Runs events with time <= until; leaves later events queued.
  std::size_t run_until(TimePoint until);

  /// True if no runnable (non-cancelled) events remain.
  [[nodiscard]] bool idle() const;

  /// Number of events executed since construction.
  [[nodiscard]] std::size_t events_executed() const { return executed_; }

  /// Number of currently pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;  // tie-breaker: FIFO among equal timestamps
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> pending_ids_;
  std::unordered_set<EventId> cancelled_;
  TimePoint now_{0};
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::size_t executed_ = 0;
};

}  // namespace h3cdn::sim
