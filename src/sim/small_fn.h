// Move-only type-erased callable with inline small-buffer storage.
//
// Simulator events are the hottest allocation site in the whole system: a
// million-client sweep schedules tens of millions of callbacks, and
// std::function heap-allocates any capture list over ~16 bytes (our typical
// event captures `this` plus two or three scalars, which is just past that
// edge). SmallFn widens the inline buffer so every event callback in the
// codebase is stored in place inside its arena slot — no per-event heap
// allocation — and falls back to the heap only for oversized captures.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace h3cdn::sim {

class SmallFn {
 public:
  /// Inline capacity: covers every event lambda in the tree (the largest
  /// captures `this` + index + id + TimePoint = 28 bytes) with headroom for
  /// a by-value std::function capture (32 bytes on libstdc++).
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      Fn* heap = new Fn(std::forward<F>(f));
      std::memcpy(buf_, &heap, sizeof heap);
      ops_ = &HeapOps<Fn>::ops;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  /// True when a callable is held.
  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  /// Destroys the held callable (if any) and returns to the empty state.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;  // move dst <- src, destroy src
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  struct InlineOps {
    static Fn* self(void* b) { return std::launder(reinterpret_cast<Fn*>(b)); }
    static void invoke(void* b) { (*self(b))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) Fn(std::move(*self(src)));
      self(src)->~Fn();
    }
    static void destroy(void* b) noexcept { self(b)->~Fn(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* self(void* b) {
      Fn* p;
      std::memcpy(&p, b, sizeof p);
      return p;
    }
    static void invoke(void* b) { (*self(b))(); }
    static void relocate(void* dst, void* src) noexcept {
      std::memcpy(dst, src, sizeof(Fn*));  // pointer hop: just move the pointer
    }
    static void destroy(void* b) noexcept { delete self(b); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  void move_from(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

}  // namespace h3cdn::sim
