#include "sim/simulator.h"

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/check.h"

namespace h3cdn::sim {

EventId Simulator::schedule_at(TimePoint at, std::function<void()> fn) {
  H3CDN_EXPECTS(at >= now_);
  H3CDN_EXPECTS(fn != nullptr);
  const EventId id = next_id_++;
  queue_.push(Event{at, next_seq_++, id, std::move(fn)});
  pending_ids_.insert(id);
  return id;
}

EventId Simulator::schedule_in(Duration delay, std::function<void()> fn) {
  H3CDN_EXPECTS(delay >= Duration::zero());
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  if (pending_ids_.find(id) == pending_ids_.end()) return false;  // fired or unknown
  return cancelled_.insert(id).second;
}

std::size_t Simulator::run() {
  obs::ProfileScope profile("sim.run");
  std::size_t n = 0;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    pending_ids_.erase(ev.id);
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    H3CDN_ASSERT(ev.at >= now_);
    now_ = ev.at;
    ++executed_;
    ++n;
    ev.fn();
  }
  obs::count("sim.events_executed", n);
  return n;
}

std::size_t Simulator::run_until(TimePoint until) {
  obs::ProfileScope profile("sim.run");
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().at <= until) {
    Event ev = queue_.top();
    queue_.pop();
    pending_ids_.erase(ev.id);
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.at;
    ++executed_;
    ++n;
    ev.fn();
  }
  if (now_ < until) now_ = until;
  obs::count("sim.events_executed", n);
  return n;
}

bool Simulator::idle() const { return queue_.size() == cancelled_.size(); }

}  // namespace h3cdn::sim
