#include "sim/simulator.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/check.h"

namespace h3cdn::sim {

namespace {

constexpr std::size_t kMinBuckets = 32;
constexpr std::uint32_t kSlotMask32 = 0xffffffffu;

Simulator::Backend backend_from_env() {
  const char* v = std::getenv("H3CDN_SIM_HEAP_SCHEDULER");
  if (v != nullptr && *v != '\0' && std::string_view(v) != "0") {
    return Simulator::Backend::Heap;
  }
  return Simulator::Backend::Calendar;
}

constexpr EventId make_event_id(std::uint32_t gen, std::uint32_t slot) {
  return (static_cast<EventId>(gen) << 32) | slot;
}

/// Strict (time, seq) order — the total order both cores fire events in.
constexpr bool entry_before(TimePoint at_a, std::uint64_t seq_a, TimePoint at_b,
                            std::uint64_t seq_b) {
  if (at_a != at_b) return at_a < at_b;
  return seq_a < seq_b;
}

}  // namespace

Simulator::Simulator() : Simulator(backend_from_env()) {}

Simulator::Simulator(Backend backend) : backend_(backend) {
  if (backend_ == Backend::Calendar) buckets_.assign(kMinBuckets, kNilSlot);
}

// ---------------------------------------------------------------------------
// Public API: thin dispatch over the two cores.
// ---------------------------------------------------------------------------

EventId Simulator::schedule_at(TimePoint at, SmallFn fn) {
  H3CDN_EXPECTS(at >= now_);
  H3CDN_EXPECTS(static_cast<bool>(fn));
  return backend_ == Backend::Calendar ? calendar_schedule(at, std::move(fn))
                                       : heap_schedule(at, std::move(fn));
}

EventId Simulator::schedule_in(Duration delay, SmallFn fn) {
  H3CDN_EXPECTS(delay >= Duration::zero());
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  return backend_ == Backend::Calendar ? calendar_cancel(id) : heap_cancel(id);
}

std::size_t Simulator::run() {
  obs::ProfileScope profile("sim.run");
  const std::size_t n = backend_ == Backend::Calendar ? calendar_run(TimePoint::max())
                                                      : heap_run(TimePoint::max());
  obs::count("sim.events_executed", n);
  return n;
}

std::size_t Simulator::run_until(TimePoint until) {
  obs::ProfileScope profile("sim.run");
  const std::size_t n =
      backend_ == Backend::Calendar ? calendar_run(until) : heap_run(until);
  if (now_ < until) now_ = until;
  obs::count("sim.events_executed", n);
  return n;
}

bool Simulator::idle() const {
  return backend_ == Backend::Calendar ? live_ == 0
                                       : heap_.size() == cancelled_.size();
}

std::size_t Simulator::pending() const {
  return backend_ == Backend::Calendar ? live_ : heap_.size() - cancelled_.size();
}

// ---------------------------------------------------------------------------
// Calendar core: slab arena + adaptive-width bucket ring.
// ---------------------------------------------------------------------------

std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(slots_.size());
  slots_.emplace_back();
  return slot;
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.live = false;
  s.fn.reset();
  if (++s.gen == 0) s.gen = 1;  // keep EventId 0 forever invalid
  free_slots_.push_back(slot);
}

void Simulator::calendar_link(std::uint32_t slot) {
  std::uint32_t& head = buckets_[virtual_index(slots_[slot].at) & (buckets_.size() - 1)];
  slots_[slot].next = head;
  head = slot;
}

void Simulator::calendar_resize(std::size_t nbuckets) {
  std::vector<std::uint32_t> old = std::move(buckets_);
  buckets_.assign(nbuckets, kNilSlot);
  calendar_recalibrate();
  base_vi_ = virtual_index(now_);
  for (std::uint32_t head : old) {
    while (head != kNilSlot) {
      const std::uint32_t next = slots_[head].next;
      calendar_link(head);
      head = next;
    }
  }
}

void Simulator::calendar_recalibrate() {
  // Brown's calendar-queue width heuristic: make buckets a small multiple of
  // the mean gap between time-adjacent live events, so an average bucket
  // holds O(1) events of the current "year". The mean gap is estimated as
  // (sampled time span) / (live count): a 64-element sample pins down the
  // span of the distribution well, but dividing by the SAMPLE count instead
  // of the live count would overestimate the gap by live_/64 and collapse
  // the whole queue into a handful of giant buckets.
  constexpr std::size_t kSample = 64;
  std::vector<std::int64_t> sample;
  sample.reserve(kSample);
  for (std::uint32_t slot = 0;
       slot < slots_.size() && sample.size() < kSample; ++slot) {
    if (slots_[slot].live) sample.push_back(slots_[slot].at.count());
  }
  if (sample.size() < 2 || live_ < 2) return;  // keep the current width
  const auto [min_it, max_it] = std::minmax_element(sample.begin(), sample.end());
  const std::int64_t span = *max_it - *min_it;
  if (span == 0) return;  // all simultaneous: any width works
  width_us_ = std::max<std::uint64_t>(
      1, 3 * static_cast<std::uint64_t>(span) / static_cast<std::uint64_t>(live_ - 1));
}

EventId Simulator::calendar_schedule(TimePoint at, SmallFn fn) {
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.at = at;
  s.seq = next_seq_++;
  s.live = true;
  s.fn = std::move(fn);
  calendar_link(slot);
  ++live_;
  if (live_ > 2 * buckets_.size()) calendar_resize(2 * buckets_.size());
  return make_event_id(slots_[slot].gen, slot);
}

bool Simulator::calendar_cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id & kSlotMask32);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.live || s.gen != gen) return false;  // fired, recycled, or unknown
  std::uint32_t* link = &buckets_[virtual_index(s.at) & (buckets_.size() - 1)];
  while (*link != kNilSlot) {
    if (*link == slot) {
      *link = s.next;
      --live_;
      release_slot(slot);
      return true;
    }
    link = &slots_[*link].next;
  }
  H3CDN_ASSERT(false && "live slot missing from its bucket");
  return false;
}

std::uint32_t Simulator::calendar_pop(TimePoint bound) {
  if (live_ == 0) return kNilSlot;
  const std::size_t n = buckets_.size();
  const std::size_t mask = n - 1;
  // Invariant: base_vi_ <= virtual_index(s.at) for every linked slot, so the
  // first bucket (scanning forward from base_vi_) holding a slot of its own
  // virtual index holds the global minimum.
  std::uint64_t vi = base_vi_;
  for (std::size_t i = 0; i < n; ++i, ++vi) {
    std::uint32_t* head = &buckets_[vi & mask];
    std::uint32_t* best = nullptr;  // link pointing at the best slot so far
    for (std::uint32_t* link = head; *link != kNilSlot; link = &slots_[*link].next) {
      const Slot& s = slots_[*link];
      if (virtual_index(s.at) != vi) continue;  // a later wheel "year"
      if (best == nullptr ||
          entry_before(s.at, s.seq, slots_[*best].at, slots_[*best].seq)) {
        best = link;
      }
    }
    if (best != nullptr) {
      const std::uint32_t slot = *best;
      if (slots_[slot].at > bound) return kNilSlot;
      *best = slots_[slot].next;  // unlink
      --live_;
      base_vi_ = vi;
      return slot;
    }
  }
  // Sparse region: nothing within one full wheel rotation. Direct-search the
  // global minimum and jump the wheel to it.
  std::uint32_t* best = nullptr;
  for (std::size_t b = 0; b < n; ++b) {
    for (std::uint32_t* link = &buckets_[b]; *link != kNilSlot;
         link = &slots_[*link].next) {
      const Slot& s = slots_[*link];
      if (best == nullptr ||
          entry_before(s.at, s.seq, slots_[*best].at, slots_[*best].seq)) {
        best = link;
      }
    }
  }
  H3CDN_ASSERT(best != nullptr);
  const std::uint32_t slot = *best;
  if (slots_[slot].at > bound) return kNilSlot;
  *best = slots_[slot].next;
  --live_;
  base_vi_ = virtual_index(slots_[slot].at);
  return slot;
}

std::size_t Simulator::calendar_run(TimePoint until) {
  std::size_t n = 0;
  for (std::uint32_t slot; (slot = calendar_pop(until)) != kNilSlot;) {
    Slot& s = slots_[slot];
    H3CDN_ASSERT(s.live);
    H3CDN_ASSERT(s.at >= now_);
    SmallFn fn = std::move(s.fn);  // move out: the slot is recycled before the
    now_ = s.at;                   // callback runs, so it can schedule freely
    release_slot(slot);
    ++executed_;
    ++n;
    fn();
    if (live_ * 8 < buckets_.size() && buckets_.size() > kMinBuckets) {
      calendar_resize(buckets_.size() / 2);
    }
  }
  return n;
}

// ---------------------------------------------------------------------------
// Heap core: the reference binary-heap scheduler (pre-calendar structure:
// priority queue + pending/cancelled id sets), kept for A/B verification and
// as the microbench baseline.
// ---------------------------------------------------------------------------

EventId Simulator::heap_schedule(TimePoint at, SmallFn fn) {
  const EventId id = next_heap_id_++;
  heap_.push(HeapEvent{at, next_seq_++, id, std::move(fn)});
  pending_ids_.insert(id);
  return id;
}

bool Simulator::heap_cancel(EventId id) {
  if (pending_ids_.find(id) == pending_ids_.end()) return false;  // fired or unknown
  return cancelled_.insert(id).second;
}

std::size_t Simulator::heap_run(TimePoint until) {
  std::size_t n = 0;
  while (!heap_.empty() && heap_.top().at <= until) {
    // priority_queue has no mutable top(); moving out is safe because pop()
    // only needs the element to be in a valid (moved-from) state.
    HeapEvent ev = std::move(const_cast<HeapEvent&>(heap_.top()));
    heap_.pop();
    pending_ids_.erase(ev.id);
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    H3CDN_ASSERT(ev.at >= now_);
    now_ = ev.at;
    ++executed_;
    ++n;
    ev.fn();
  }
  return n;
}

}  // namespace h3cdn::sim
