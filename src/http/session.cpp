#include "http/session.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/check.h"

namespace h3cdn::http {

namespace {
Duration clamp_nonneg(Duration d) { return std::max(d, Duration::zero()); }
}  // namespace

std::shared_ptr<Session> Session::create(sim::Simulator& sim,
                                         std::shared_ptr<transport::Connection> conn,
                                         HttpVersion version, SessionConfig config) {
  H3CDN_EXPECTS(conn != nullptr);
  // Transport/version pairing: H3 runs on QUIC, H1.1/H2 on TCP.
  if (version == HttpVersion::H3) {
    H3CDN_EXPECTS(conn->kind() == tls::TransportKind::Quic);
  } else {
    H3CDN_EXPECTS(conn->kind() == tls::TransportKind::Tcp);
  }
  return std::shared_ptr<Session>(new Session(sim, std::move(conn), version, config));
}

Session::Session(sim::Simulator& sim, std::shared_ptr<transport::Connection> conn,
                 HttpVersion version, SessionConfig config)
    : sim_(sim), conn_(std::move(conn)), version_(version), config_(config) {
  if (version_ == HttpVersion::H1_1) config_.max_concurrent_streams = 1;
}

void Session::start() {
  H3CDN_EXPECTS(!started_);
  started_ = true;
  auto self = shared_from_this();
  conn_->connect([self](TimePoint) { self->maybe_dispatch(); });
  // weak: the connection outlives this closure only through the session's own
  // conn_ reference; a strong self here would make the cycle permanent.
  std::weak_ptr<Session> weak = self;
  conn_->set_on_dead([weak](transport::ConnectionError error, TimePoint) {
    if (auto s = weak.lock()) s->on_connection_dead(error);
  });
}

void Session::submit(const Request& request, FetchDone done) {
  H3CDN_EXPECTS(!closed_);
  H3CDN_EXPECTS(done != nullptr);
  queue_.push_back(PendingEntry{request, std::move(done), sim_.now(), 0});
  maybe_dispatch();
}

void Session::submit_rescued(Orphan orphan) {
  H3CDN_EXPECTS(!closed_);
  H3CDN_EXPECTS(orphan.done != nullptr);
  queue_.push_back(PendingEntry{std::move(orphan.request), std::move(orphan.done),
                                orphan.submitted, orphan.attempts, orphan.bytes_received});
  maybe_dispatch();
}

void Session::maybe_dispatch() {
  if (closed_) return;
  // Dispatch is allowed while the handshake is still running: the transport
  // queues streams and flushes them at readiness (and immediately for 0-RTT).
  // Gating on the stream limit is what distinguishes H1 (serial) from H2/H3.
  while (!queue_.empty() && in_flight_ < config_.max_concurrent_streams) {
    PendingEntry entry = std::move(queue_.front());
    queue_.pop_front();
    dispatch(std::move(entry));
  }
}

void Session::dispatch(PendingEntry pending) {
  auto entry = std::make_shared<ActiveEntry>();
  entry->submitted = pending.submitted;
  entry->dispatched = sim_.now();
  entry->attempts = pending.attempts + 1;
  entry->resume_offset = std::min(pending.resume_offset, pending.request.response_bytes);
  entry->request = std::move(pending.request);
  entry->done = std::move(pending.done);
  if (!initiator_assigned_) {
    // The first entry on a session is charged the handshake in its HAR
    // "connect" phase; every later entry reports connect == 0, which is the
    // paper's definition of a *reused HTTP connection* (§VI-C).
    initiator_assigned_ = true;
    entry->initiator = true;
  }
  ++in_flight_;
  active_.push_back(entry);

  auto self = shared_from_this();
  transport::FetchCallbacks cbs;
  cbs.on_request_sent = [entry](TimePoint t) { entry->request_sent = t; };
  cbs.on_first_byte = [entry](TimePoint t) { entry->first_byte = t; };
  cbs.on_complete = [self, entry](TimePoint t) { self->finalize(entry, t); };
  cbs.on_server_request = entry->request.server_hold;

  const std::size_t wire_request =
      entry->request.request_bytes + config_.per_stream_header_overhead;
  // A Range resume skips the already-delivered body prefix but always
  // re-fetches the response headers; keep at least one body byte on the wire
  // so completion still flows through the transport's delivery path.
  const std::size_t body_remaining =
      std::max<std::size_t>(entry->request.response_bytes - entry->resume_offset, 1);
  const std::size_t wire_response = body_remaining + config_.per_stream_header_overhead;
  // Completion can only fire after simulated round trips, never inside
  // fetch(), so recording the stream id afterwards is safe.
  entry->stream_id = conn_->fetch(wire_request, wire_response, entry->request.server_think,
                                  std::move(cbs), entry->request.priority);
}

void Session::finalize(std::shared_ptr<ActiveEntry> entry, TimePoint completed) {
  if (closed_) return;
  H3CDN_ASSERT(entry->request_sent >= TimePoint{0});
  H3CDN_ASSERT(entry->first_byte >= entry->request_sent);

  const auto& cstats = conn_->stats();
  EntryTimings t;
  t.started = entry->submitted;
  t.finished = completed;
  t.version = version_;
  t.handshake_mode = cstats.mode;
  t.connection_id = connection_id_;
  t.attempts = entry->attempts;
  t.resumed_from_bytes = entry->resume_offset;
  t.new_connection_initiator = entry->initiator;
  t.reused_connection = !entry->initiator;
  t.resumed = entry->initiator && cstats.mode != tls::HandshakeMode::Fresh;
  t.connect = entry->initiator ? clamp_nonneg(cstats.connect_time) : Duration::zero();

  // The request starts flowing once both the stream was dispatched and the
  // connection became ready.
  const TimePoint send_start = std::max(entry->dispatched, cstats.ready_at);
  t.send = clamp_nonneg(entry->request_sent - send_start);
  t.wait = clamp_nonneg(entry->first_byte - entry->request_sent);
  t.receive = clamp_nonneg(completed - entry->first_byte);
  const auto stalls = conn_->stall_totals(entry->stream_id);
  t.hol_stall = stalls.hol_stall;
  t.retx_wait = stalls.retx_wait;
  if (auto note = conn_->stream_annotation(entry->stream_id)) {
    t.upstream = std::static_pointer_cast<const UpstreamRecord>(note);
  }
  // Whatever is not handshake or data movement was queueing.
  t.blocked = clamp_nonneg((t.finished - t.started) - t.connect - t.send - t.wait - t.receive);

  H3CDN_ASSERT(in_flight_ > 0);
  --in_flight_;
  ++entries_completed_;
  obs::count("http.entries_completed");
  if (obs::enabled()) {
    obs::observe_ms("http.entry.total_ms", t.total());
    obs::observe_ms("http.entry.connect_ms", t.connect);
    obs::observe_ms("http.entry.blocked_ms", t.blocked);
    obs::observe_ms("http.entry.ttfb_ms", t.wait);
    obs::observe_ms("http.entry.receive_ms", t.receive);
  }
  std::erase(active_, entry);
  auto done = entry->done;
  maybe_dispatch();
  done(t);
}

void Session::on_connection_dead(transport::ConnectionError error) {
  if (closed_) return;
  dead_ = true;
  closed_ = true;
  // Evacuate every stranded entry — dispatched-but-incomplete first (they
  // were submitted earlier), then the still-queued ones — and hand them to
  // the owner. Without a handler the entries are simply abandoned, matching
  // the legacy behaviour of a closed session.
  std::vector<Orphan> orphans;
  orphans.reserve(active_.size() + queue_.size());
  for (auto& entry : active_) {
    // Progress made on this and every prior attempt survives the death: the
    // stream map is never pruned, so resp_delivered is still readable. The
    // header-overhead share of the wire bytes is not body progress.
    const std::size_t wire = conn_->stream_bytes_received(entry->stream_id);
    const std::size_t body =
        wire > config_.per_stream_header_overhead ? wire - config_.per_stream_header_overhead : 0;
    orphans.push_back(
        Orphan{std::move(entry->request), std::move(entry->done), entry->submitted,
               entry->attempts, entry->resume_offset + body});
  }
  active_.clear();
  in_flight_ = 0;
  for (auto& pending : queue_) {
    orphans.push_back(Orphan{std::move(pending.request), std::move(pending.done),
                             pending.submitted, pending.attempts, pending.resume_offset});
  }
  queue_.clear();
  if (on_dead_) {
    auto handler = std::move(on_dead_);
    on_dead_ = nullptr;
    handler(error, std::move(orphans));
  }
}

void Session::close() {
  if (closed_) return;
  closed_ = true;
  queue_.clear();
  conn_->close();
}

}  // namespace h3cdn::http
