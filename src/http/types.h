// HTTP-level request/response vocabulary shared by sessions, the pool, the
// browser, and the analysis pipeline.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "tls/handshake.h"
#include "transport/server_hold.h"
#include "util/types.h"

namespace h3cdn::http {

enum class HttpVersion { H1_1, H2, H3 };

/// HAR-style protocol strings ("http/1.1", "h2", "h3").
const char* to_string(HttpVersion v);

/// Why a request's lifecycle ended without a response (EntryTimings::failed).
/// Typed so the chaos harness can check the conservation invariant
/// "attempts = successes + typed failures" (docs/RESILIENCE.md).
enum class FailureReason {
  None,              // not failed
  RetriesExhausted,  // dispatch budget spent across connection deaths
  DeadlineExceeded,  // resilience per-request or per-page budget expired
};

const char* to_string(FailureReason r);

/// One HTTP exchange as submitted by the browser.
struct Request {
  std::string domain;                     // connection key (SNI / origin host)
  std::string path;                       // for HAR output only
  std::size_t request_bytes = 500;        // serialized request incl. headers
  std::size_t response_bytes = 10'000;    // response body + headers on the wire
  Duration server_think{0};               // server processing time (cdn model)
  int priority = 3;                       // 0 = most urgent (browser sets by type)
  // Server-side response gate (src/topology/): set by PoolConfig::server_hold
  // for domains routed through a relay chain; empty for the direct path.
  transport::ServerHold server_hold;
};

struct UpstreamRecord;

/// HAR-equivalent per-entry phase timings (the paper's §III-C metrics:
/// Connection, Wait, Receive; plus the rest of the HAR phases for
/// completeness). Times are client-side simulated durations.
struct EntryTimings {
  TimePoint started{0};       // request submitted to the pool
  TimePoint finished{0};      // last response byte delivered
  Duration dns{0};            // name resolution (0 when cached; set by the browser)
  Duration blocked{0};        // queueing for a connection/stream slot
  Duration connect{0};        // handshake time charged to this entry; 0 = reused
  Duration send{0};           // writing the request
  Duration wait{0};           // request written -> first response byte
  Duration receive{0};        // first -> last response byte
  // Intervals inside wait+receive during which response bytes sat buffered
  // behind a transport gap (transport::Connection::stall_totals). Not part of
  // the additive phase sum above — critical-path attribution carves them out
  // of wait/receive (docs/OBSERVABILITY.md).
  Duration hol_stall{0};      // blocked behind another stream's gap (TCP HoL)
  Duration retx_wait{0};      // blocked on this stream's own retransmission
  HttpVersion version = HttpVersion::H2;
  tls::HandshakeMode handshake_mode = tls::HandshakeMode::Fresh;
  std::uint64_t connection_id = 0;  // pool-scoped id of the serving connection
  int attempts = 1;                 // dispatches incl. rescues after deaths
  bool reused_connection = false;  // rode an already-established connection
  bool resumed = false;            // new connection, but via session ticket
  bool new_connection_initiator = false;
  // The request exhausted its retry budget across connection deaths and was
  // abandoned; phase timings other than started/finished are meaningless.
  bool failed = false;
  FailureReason failure = FailureReason::None;  // typed cause when failed
  // Response-body bytes NOT re-downloaded on this dispatch because the
  // resilience engine resumed the transfer with an HTTP Range request after a
  // connection death (0 = full body fetched). See docs/RESILIENCE.md.
  std::size_t resumed_from_bytes = 0;
  // Per-hop provenance for entries served through a relay chain
  // (src/topology/): the first relay's upstream fetch, with deeper tiers
  // nested via timings.upstream. nullptr for direct fetches.
  std::shared_ptr<const UpstreamRecord> upstream;

  /// Total entry latency.
  [[nodiscard]] Duration total() const { return finished - started; }
};

/// One relay's view of fetching a resource from the next tier up. Produced by
/// topology::HopRelay, attached to the downstream stream as its annotation,
/// and surfaced on EntryTimings::upstream; tiers deeper than the first nest
/// via `timings.upstream`.
struct UpstreamRecord {
  std::string tier;        // relay name ("proxy", "mid-tier", ...)
  bool cache_hit = false;  // served from the tier's cache; timings are empty
  EntryTimings timings;    // the relay's own pool-level fetch timings
};

using FetchDone = std::function<void(const EntryTimings&)>;

}  // namespace h3cdn::http
