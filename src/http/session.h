// An HTTP session: one transport connection plus HTTP-version-specific
// multiplexing rules.
//
//   HTTP/1.1 : one request at a time (keep-alive reuse, no pipelining —
//              matching modern browser behaviour).
//   HTTP/2   : many concurrent streams over one TCP connection.
//   HTTP/3   : many concurrent streams over one QUIC connection.
//
// The session also produces the HAR-style phase timings for each entry; the
// paper's connection/wait/receive metrics (§III-C) are computed here.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "http/types.h"
#include "sim/simulator.h"
#include "transport/connection.h"

namespace h3cdn::http {

struct SessionConfig {
  std::size_t max_concurrent_streams = 100;  // SETTINGS_MAX_CONCURRENT_STREAMS
  std::size_t per_stream_header_overhead = 60;  // frame/QPACK/HPACK framing cost
};

class Session : public std::enable_shared_from_this<Session> {
 public:
  /// A request stranded by a connection death, carrying everything needed to
  /// transparently re-submit it elsewhere. `submitted` is the ORIGINAL
  /// submission time, so the re-run entry's HAR "blocked" phase absorbs the
  /// detour and page metrics stay honest. `attempts` counts prior dispatches.
  struct Orphan {
    Request request;
    FetchDone done;
    TimePoint submitted{0};
    int attempts = 0;
    // Response-body bytes delivered in order across ALL prior attempts,
    // read from transport::Connection::stream_bytes_received after the
    // death. The pool turns this into a Range resume offset when the
    // resilience engine is enabled, and zeroes it otherwise (the legacy
    // full-re-download behaviour).
    std::size_t bytes_received = 0;
  };

  /// Fires once when the underlying connection dies, with every queued and
  /// in-flight entry of this session. The session is closed by then; the
  /// handler (the pool) decides where the orphans go next.
  using DeathHandler = std::function<void(transport::ConnectionError, std::vector<Orphan>)>;

  static std::shared_ptr<Session> create(sim::Simulator& sim,
                                         std::shared_ptr<transport::Connection> conn,
                                         HttpVersion version, SessionConfig config = {});

  /// Starts the transport handshake. Requests submitted earlier or while the
  /// handshake runs are queued and flushed on readiness.
  void start();

  /// Submits one exchange. `done` fires with complete HAR timings.
  void submit(const Request& request, FetchDone done);

  /// Re-submits an orphan evacuated from a dead session, preserving its
  /// original submission time and attempt count.
  void submit_rescued(Orphan orphan);

  void set_on_dead(DeathHandler handler) { on_dead_ = std::move(handler); }

  /// Pool-scoped identifier stamped into every entry's timings so waterfalls
  /// can show which connection served each resource. 0 = unassigned.
  void set_connection_id(std::uint64_t id) { connection_id_ = id; }
  [[nodiscard]] std::uint64_t connection_id() const { return connection_id_; }

  /// Closes the underlying transport (end of page visit).
  void close();

  [[nodiscard]] HttpVersion version() const { return version_; }
  [[nodiscard]] const transport::Connection& connection() const { return *conn_; }
  [[nodiscard]] transport::Connection& connection() { return *conn_; }
  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  [[nodiscard]] bool closed() const { return closed_; }
  [[nodiscard]] bool dead() const { return dead_; }
  [[nodiscard]] std::uint64_t entries_completed() const { return entries_completed_; }

 private:
  Session(sim::Simulator& sim, std::shared_ptr<transport::Connection> conn, HttpVersion version,
          SessionConfig config);

  struct PendingEntry {
    Request request;
    FetchDone done;
    TimePoint submitted{0};
    int attempts = 0;
    std::size_t resume_offset = 0;  // body bytes already received (Range resume)
  };

  struct ActiveEntry {
    TimePoint submitted{0};
    TimePoint dispatched{0};
    TimePoint request_sent{-1};
    TimePoint first_byte{-1};
    transport::StreamId stream_id = 0;  // for post-hoc stall attribution
    bool initiator = false;
    int attempts = 0;
    std::size_t resume_offset = 0;  // body bytes already received (Range resume)
    Request request;
    FetchDone done;
  };

  void maybe_dispatch();
  void dispatch(PendingEntry entry);
  void finalize(std::shared_ptr<ActiveEntry> entry, TimePoint completed);
  void on_connection_dead(transport::ConnectionError error);

  sim::Simulator& sim_;
  std::shared_ptr<transport::Connection> conn_;
  HttpVersion version_;
  SessionConfig config_;
  std::deque<PendingEntry> queue_;
  std::vector<std::shared_ptr<ActiveEntry>> active_;  // dispatched, not finalized
  std::size_t in_flight_ = 0;
  bool started_ = false;
  bool initiator_assigned_ = false;
  bool closed_ = false;
  bool dead_ = false;
  std::uint64_t entries_completed_ = 0;
  std::uint64_t connection_id_ = 0;
  DeathHandler on_dead_;
};

}  // namespace h3cdn::http
