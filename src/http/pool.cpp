#include "http/pool.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"
#include "util/check.h"

namespace h3cdn::http {

ConnectionPool::ConnectionPool(sim::Simulator& sim, PoolConfig config, Resolver resolver,
                               tls::SessionTicketStore* tickets, util::Rng rng)
    : sim_(sim),
      config_(std::move(config)),
      resolver_(std::move(resolver)),
      tickets_(tickets),
      rng_(rng) {
  H3CDN_EXPECTS(resolver_ != nullptr);
  H3CDN_EXPECTS(config_.h1_max_connections_per_origin >= 1);
}

HttpVersion ConnectionPool::protocol_for(const OriginInfo& origin) const {
  if (!origin.supports_h2) return HttpVersion::H1_1;
  if (config_.h3_enabled && origin.supports_h3) return HttpVersion::H3;
  return HttpVersion::H2;
}

bool ConnectionPool::h3_broken(const std::string& domain) {
  auto it = h3_broken_until_.find(domain);
  if (it == h3_broken_until_.end()) return false;
  if (sim_.now() >= it->second) {
    // TTL expired: clear the mark; the caller's next H3 dial is the re-probe.
    h3_broken_until_.erase(it);
    ++stats_.h3_reprobes;
    obs::count("http.pool.h3_reprobes");
    record_fault(trace::EventType::H3ReProbe, trace::FaultKind::None);
    return false;
  }
  return true;
}

void ConnectionPool::record_fault(trace::EventType type, trace::FaultKind fault) {
  if (!trace_) return;
  trace::Event event{sim_.now(), type};
  event.fault = fault;
  trace_->record(event);
}

ConnectionPool::OriginState& ConnectionPool::origin_state(const std::string& domain) {
  auto& state = origins_[domain];
  if (!state.info) {
    state.info = resolver_(domain);
    H3CDN_ENSURES(state.info->path != nullptr);
  }
  return state;
}

std::shared_ptr<Session> ConnectionPool::make_session(const std::string& domain,
                                                      const OriginInfo& origin,
                                                      HttpVersion version) {
  const tls::TransportKind kind =
      version == HttpVersion::H3 ? tls::TransportKind::Quic : tls::TransportKind::Tcp;
  const tls::TlsVersion tls_version =
      kind == tls::TransportKind::Quic ? tls::TlsVersion::Tls13 : origin.tls_version;

  tls::HandshakeMode mode = tls::HandshakeMode::Fresh;
  if (tickets_ != nullptr) mode = tickets_->best_mode(domain, sim_.now(), kind);
  if (!config_.allow_zero_rtt && mode == tls::HandshakeMode::ZeroRtt) {
    mode = tls::HandshakeMode::Resumed;
  }

  transport::TransportConfig tconfig = config_.transport;
  tconfig.domain = domain;
  tconfig.handshake_admission = origin.handshake_admission;
  tconfig.connection_release = origin.connection_release;
  // Mature H2 stacks schedule by the browser's fine-grained priority
  // signals; 2022-era H3 stacks supported at best coarse RFC 9218 urgency.
  tconfig.respect_priorities = true;
  tconfig.priority_coarseness = version == HttpVersion::H3 ? 3 : 1;
  auto conn = transport::Connection::create(sim_, *origin.path, kind, tls_version, mode,
                                            rng_.fork(domain).fork(stats_.connections_created),
                                            std::move(tconfig));
  if (tickets_ != nullptr) {
    conn->set_ticket_sink([store = tickets_](tls::SessionTicket t) { store->store(std::move(t)); });
  }
  if (config_.connection_trace_factory) {
    conn->set_trace(config_.connection_trace_factory(domain, version));
  }

  ++stats_.connections_created;
  switch (version) {
    case HttpVersion::H1_1:
      ++stats_.h1_connections;
      obs::count("http.pool.connections.h1");
      break;
    case HttpVersion::H2:
      ++stats_.h2_connections;
      obs::count("http.pool.connections.h2");
      break;
    case HttpVersion::H3:
      ++stats_.h3_connections;
      obs::count("http.pool.connections.h3");
      break;
  }
  if (mode != tls::HandshakeMode::Fresh) {
    ++stats_.resumed_connections;
    obs::count("http.pool.resumed_connections");
  }
  if (mode == tls::HandshakeMode::ZeroRtt) ++stats_.zero_rtt_connections;

  auto session = Session::create(sim_, std::move(conn), version, config_.session);
  // 1-based, pool-scoped: the id shows up in waterfalls and EntryTimings.
  session->set_connection_id(stats_.connections_created);
  // Death notification: evacuated orphans come back to the pool, which
  // decides between H2 fallback, a fresh same-protocol dial, or giving up.
  std::weak_ptr<Session> weak = session;
  session->set_on_dead([this, domain, version, weak](transport::ConnectionError error,
                                                     std::vector<Session::Orphan> orphans) {
    on_session_dead(domain, version, weak.lock(), error, std::move(orphans));
  });
  session->start();
  return session;
}

std::shared_ptr<Session> ConnectionPool::h1_session(const std::string& domain,
                                                    OriginState& state) {
  // Prefer a fully idle keep-alive connection; otherwise open a new one up to
  // the browser's per-origin cap; otherwise queue on the least-loaded one.
  for (auto& s : state.h1) {
    if (s->in_flight() == 0 && s->queued() == 0) return s;
  }
  if (state.h1.size() < config_.h1_max_connections_per_origin) {
    state.h1.push_back(make_session(domain, *state.info, HttpVersion::H1_1));
    return state.h1.back();
  }
  std::shared_ptr<Session> best;
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  for (auto& s : state.h1) {
    const std::size_t load = s->in_flight() + s->queued();
    if (load < best_load) {
      best_load = load;
      best = s;
    }
  }
  return best;
}

std::shared_ptr<Session> ConnectionPool::session_for(const std::string& domain,
                                                     OriginState& state, HttpVersion version) {
  switch (version) {
    case HttpVersion::H1_1:
      return h1_session(domain, state);
    case HttpVersion::H2: {
      const std::string& key =
          state.info->coalesce_key.empty() ? domain : state.info->coalesce_key;
      auto& slot = h2_sessions_[key];
      if (!slot) slot = make_session(domain, *state.info, HttpVersion::H2);
      return slot;
    }
    case HttpVersion::H3:
      if (!state.h3) state.h3 = make_session(domain, *state.info, HttpVersion::H3);
      return state.h3;
  }
  H3CDN_ASSERT(false);
  return nullptr;
}

void ConnectionPool::fetch(const Request& request, FetchDone done) {
  H3CDN_EXPECTS(!request.domain.empty());
  ++stats_.entries_submitted;
  auto& state = origin_state(request.domain);
  HttpVersion version = protocol_for(*state.info);
  if (config_.protocol_hint && state.info->supports_h2) {
    const auto hint = config_.protocol_hint(request.domain);
    if (hint == HttpVersion::H2) version = HttpVersion::H2;
    if (hint == HttpVersion::H3 && config_.h3_enabled && state.info->supports_h3) {
      version = HttpVersion::H3;
    }
  }
  // Alt-Svc brokenness: a host whose H3 died routes to H2 until the timed
  // re-probe (h3_broken clears an expired mark as a side effect).
  if (version == HttpVersion::H3 && config_.h3_fallback_enabled && h3_broken(request.domain)) {
    version = HttpVersion::H2;
  }

  std::shared_ptr<Session> session = session_for(request.domain, state, version);
  Request routed = request;
  if (config_.think_time) routed.server_think = config_.think_time(routed, version);
  session->submit(routed, std::move(done));
}

void ConnectionPool::on_session_dead(const std::string& domain, HttpVersion version,
                                     const std::shared_ptr<Session>& session,
                                     transport::ConnectionError error,
                                     std::vector<Session::Orphan> orphans) {
  ++stats_.connection_deaths;
  obs::count("http.pool.connection_deaths");
  const bool refused = error == transport::ConnectionError::Refused;
  const trace::FaultKind fault = refused ? trace::FaultKind::Refused
                                 : error == transport::ConnectionError::Blackhole
                                     ? trace::FaultKind::Blackhole
                                     : trace::FaultKind::HandshakeTimeout;

  // Deregister the corpse so the next dial creates a fresh connection.
  if (session) {
    auto state_it = origins_.find(domain);
    if (state_it != origins_.end()) {
      auto& state = state_it->second;
      if (state.h3 == session) state.h3.reset();
      std::erase(state.h1, session);
    }
    for (auto it = h2_sessions_.begin(); it != h2_sessions_.end(); ++it) {
      if (it->second == session) {
        h2_sessions_.erase(it);
        break;
      }
    }
  }

  // A refusal means "server busy", not "protocol broken": never mark H3
  // broken for it, retry on the SAME protocol after a jittered exponential
  // backoff so the herd does not re-arrive in lockstep.
  if (refused) {
    ++stats_.connections_refused;
    obs::count("http.pool.connections_refused");
    for (auto& orphan : orphans) {
      if (orphan.attempts >= config_.max_request_retries) {
        ++stats_.requests_failed;
        obs::count("http.entries_failed");
        EntryTimings t;
        t.started = orphan.submitted;
        t.finished = sim_.now();
        t.version = version;
        t.failed = true;
        auto done = std::move(orphan.done);
        done(t);
        continue;
      }
      ++stats_.requests_rescued;
      ++stats_.refusal_retries;
      obs::count("http.pool.requests_rescued");
      obs::count("http.pool.refusal_retries");
      record_fault(trace::EventType::FallbackTriggered, fault);
      const int exponent = std::max(0, orphan.attempts - 1);
      Duration backoff{config_.refusal_backoff_base.count() << std::min(exponent, 6)};
      backoff += Duration{static_cast<std::int64_t>(
          static_cast<double>(backoff.count()) *
          rng_.uniform(0.0, config_.refusal_backoff_jitter))};
      sim_.schedule_in(backoff,
                       [this, orphan = std::move(orphan), version]() mutable {
                         route_rescue(std::move(orphan), version);
                       });
    }
    return;
  }

  // An H3 death marks the host broken and degrades it to H2 (Chrome's
  // Alt-Svc brokenness). TCP deaths retry on a fresh same-protocol session.
  HttpVersion reroute = version;
  if (version == HttpVersion::H3 && config_.h3_fallback_enabled) {
    h3_broken_until_[domain] = sim_.now() + config_.h3_broken_ttl;
    ++stats_.h3_broken_marks;
    ++stats_.h3_fallbacks;
    obs::count("http.pool.h3_fallbacks");
    record_fault(trace::EventType::H3BrokenMarked, fault);
    reroute = HttpVersion::H2;
  }

  for (auto& orphan : orphans) {
    if (orphan.attempts >= config_.max_request_retries) {
      ++stats_.requests_failed;
      obs::count("http.entries_failed");
      EntryTimings t;
      t.started = orphan.submitted;
      t.finished = sim_.now();
      t.version = version;
      t.failed = true;
      auto done = std::move(orphan.done);
      done(t);
      continue;
    }
    ++stats_.requests_rescued;
    obs::count("http.pool.requests_rescued");
    record_fault(trace::EventType::FallbackTriggered, fault);
    route_rescue(std::move(orphan), reroute);
  }
}

void ConnectionPool::route_rescue(Session::Orphan orphan, HttpVersion preferred) {
  // Coalesced H2 sessions serve several domains, so routing is per orphan.
  auto& state = origin_state(orphan.request.domain);
  HttpVersion version = preferred;
  if (!state.info->supports_h2) version = HttpVersion::H1_1;
  if (version == HttpVersion::H3 &&
      (!config_.h3_enabled || !state.info->supports_h3 ||
       (config_.h3_fallback_enabled && h3_broken(orphan.request.domain)))) {
    version = HttpVersion::H2;
  }
  std::shared_ptr<Session> session = session_for(orphan.request.domain, state, version);
  // The protocol may have changed; the server-side cost model is per-protocol.
  if (config_.think_time) {
    orphan.request.server_think = config_.think_time(orphan.request, version);
  }
  session->submit_rescued(std::move(orphan));
}

void ConnectionPool::close_all() {
  for (auto& [key, session] : h2_sessions_) session->close();
  for (auto& [domain, state] : origins_) {
    if (state.h3) state.h3->close();
    for (auto& s : state.h1) s->close();
  }
  h2_sessions_.clear();
  origins_.clear();
}

std::size_t ConnectionPool::session_count() const {
  std::size_t n = h2_sessions_.size();
  for (const auto& [domain, state] : origins_) {
    n += (state.h3 ? 1 : 0) + state.h1.size();
  }
  return n;
}

}  // namespace h3cdn::http
