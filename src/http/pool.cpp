#include "http/pool.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace h3cdn::http {

ConnectionPool::ConnectionPool(sim::Simulator& sim, PoolConfig config, Resolver resolver,
                               tls::SessionTicketStore* tickets, util::Rng rng)
    : sim_(sim),
      config_(std::move(config)),
      resolver_(std::move(resolver)),
      tickets_(tickets),
      rng_(rng) {
  H3CDN_EXPECTS(resolver_ != nullptr);
  H3CDN_EXPECTS(config_.h1_max_connections_per_origin >= 1);
}

HttpVersion ConnectionPool::protocol_for(const OriginInfo& origin) const {
  if (!origin.supports_h2) return HttpVersion::H1_1;
  if (config_.h3_enabled && origin.supports_h3) return HttpVersion::H3;
  return HttpVersion::H2;
}

ConnectionPool::OriginState& ConnectionPool::origin_state(const std::string& domain) {
  auto& state = origins_[domain];
  if (!state.info) {
    state.info = resolver_(domain);
    H3CDN_ENSURES(state.info->path != nullptr);
  }
  return state;
}

std::shared_ptr<Session> ConnectionPool::make_session(const std::string& domain,
                                                      const OriginInfo& origin,
                                                      HttpVersion version) {
  const tls::TransportKind kind =
      version == HttpVersion::H3 ? tls::TransportKind::Quic : tls::TransportKind::Tcp;
  const tls::TlsVersion tls_version =
      kind == tls::TransportKind::Quic ? tls::TlsVersion::Tls13 : origin.tls_version;

  tls::HandshakeMode mode = tls::HandshakeMode::Fresh;
  if (tickets_ != nullptr) mode = tickets_->best_mode(domain, sim_.now(), kind);
  if (!config_.allow_zero_rtt && mode == tls::HandshakeMode::ZeroRtt) {
    mode = tls::HandshakeMode::Resumed;
  }

  transport::TransportConfig tconfig = config_.transport;
  tconfig.domain = domain;
  // Mature H2 stacks schedule by the browser's fine-grained priority
  // signals; 2022-era H3 stacks supported at best coarse RFC 9218 urgency.
  tconfig.respect_priorities = true;
  tconfig.priority_coarseness = version == HttpVersion::H3 ? 3 : 1;
  auto conn = transport::Connection::create(sim_, *origin.path, kind, tls_version, mode,
                                            rng_.fork(domain).fork(stats_.connections_created),
                                            std::move(tconfig));
  if (tickets_ != nullptr) {
    conn->set_ticket_sink([store = tickets_](tls::SessionTicket t) { store->store(std::move(t)); });
  }

  ++stats_.connections_created;
  switch (version) {
    case HttpVersion::H1_1: ++stats_.h1_connections; break;
    case HttpVersion::H2: ++stats_.h2_connections; break;
    case HttpVersion::H3: ++stats_.h3_connections; break;
  }
  if (mode != tls::HandshakeMode::Fresh) ++stats_.resumed_connections;
  if (mode == tls::HandshakeMode::ZeroRtt) ++stats_.zero_rtt_connections;

  auto session = Session::create(sim_, std::move(conn), version, config_.session);
  session->start();
  return session;
}

std::shared_ptr<Session> ConnectionPool::h1_session(const std::string& domain,
                                                    OriginState& state) {
  // Prefer a fully idle keep-alive connection; otherwise open a new one up to
  // the browser's per-origin cap; otherwise queue on the least-loaded one.
  for (auto& s : state.h1) {
    if (s->in_flight() == 0 && s->queued() == 0) return s;
  }
  if (state.h1.size() < config_.h1_max_connections_per_origin) {
    state.h1.push_back(make_session(domain, *state.info, HttpVersion::H1_1));
    return state.h1.back();
  }
  std::shared_ptr<Session> best;
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  for (auto& s : state.h1) {
    const std::size_t load = s->in_flight() + s->queued();
    if (load < best_load) {
      best_load = load;
      best = s;
    }
  }
  return best;
}

void ConnectionPool::fetch(const Request& request, FetchDone done) {
  H3CDN_EXPECTS(!request.domain.empty());
  ++stats_.entries_submitted;
  auto& state = origin_state(request.domain);
  HttpVersion version = protocol_for(*state.info);
  if (config_.protocol_hint && state.info->supports_h2) {
    const auto hint = config_.protocol_hint(request.domain);
    if (hint == HttpVersion::H2) version = HttpVersion::H2;
    if (hint == HttpVersion::H3 && config_.h3_enabled && state.info->supports_h3) {
      version = HttpVersion::H3;
    }
  }

  std::shared_ptr<Session> session;
  switch (version) {
    case HttpVersion::H1_1:
      session = h1_session(request.domain, state);
      break;
    case HttpVersion::H2: {
      const std::string& key =
          state.info->coalesce_key.empty() ? request.domain : state.info->coalesce_key;
      auto& slot = h2_sessions_[key];
      if (!slot) slot = make_session(request.domain, *state.info, HttpVersion::H2);
      session = slot;
      break;
    }
    case HttpVersion::H3:
      if (!state.h3) state.h3 = make_session(request.domain, *state.info, HttpVersion::H3);
      session = state.h3;
      break;
  }

  Request routed = request;
  if (config_.think_time) routed.server_think = config_.think_time(routed, version);
  session->submit(routed, std::move(done));
}

void ConnectionPool::close_all() {
  for (auto& [key, session] : h2_sessions_) session->close();
  for (auto& [domain, state] : origins_) {
    if (state.h3) state.h3->close();
    for (auto& s : state.h1) s->close();
  }
  h2_sessions_.clear();
  origins_.clear();
}

std::size_t ConnectionPool::session_count() const {
  std::size_t n = h2_sessions_.size();
  for (const auto& [domain, state] : origins_) {
    n += (state.h3 ? 1 : 0) + state.h1.size();
  }
  return n;
}

}  // namespace h3cdn::http
