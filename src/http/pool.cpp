#include "http/pool.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"
#include "obs/timeline.h"
#include "util/check.h"

namespace h3cdn::http {

ConnectionPool::ConnectionPool(sim::Simulator& sim, PoolConfig config, Resolver resolver,
                               tls::SessionTicketStore* tickets, util::Rng rng)
    : sim_(sim),
      config_(std::move(config)),
      resolver_(std::move(resolver)),
      tickets_(tickets),
      rng_(rng),
      created_at_(sim.now()) {
  H3CDN_EXPECTS(resolver_ != nullptr);
  H3CDN_EXPECTS(config_.h1_max_connections_per_origin >= 1);
}

resilience::Engine* ConnectionPool::engine() const {
  resilience::Engine* e = config_.resilience;
  return (e != nullptr && e->enabled()) ? e : nullptr;
}

HttpVersion ConnectionPool::protocol_for(const OriginInfo& origin) const {
  if (!origin.supports_h2) return HttpVersion::H1_1;
  if (config_.h3_enabled && origin.supports_h3) return HttpVersion::H3;
  return HttpVersion::H2;
}

bool ConnectionPool::h3_broken(const std::string& domain) {
  auto it = h3_broken_until_.find(domain);
  if (it == h3_broken_until_.end()) return false;
  if (sim_.now() >= it->second) {
    // TTL expired: clear the mark; the caller's next H3 dial is the re-probe.
    h3_broken_until_.erase(it);
    ++stats_.h3_reprobes;
    obs::count("http.pool.h3_reprobes");
    obs::tl_count("http.pool.h3_reprobes", sim_.now());
    record_fault(trace::EventType::H3ReProbe, trace::FaultKind::None);
    return false;
  }
  return true;
}

void ConnectionPool::record_fault(trace::EventType type, trace::FaultKind fault) {
  if (!trace_) return;
  trace::Event event{sim_.now(), type};
  event.fault = fault;
  trace_->record(event);
}

ConnectionPool::OriginState& ConnectionPool::origin_state(const std::string& domain) {
  auto& state = origins_[domain];
  if (!state.info) {
    state.info = resolver_(domain);
    H3CDN_ENSURES(state.info->path != nullptr);
  }
  return state;
}

std::shared_ptr<Session> ConnectionPool::make_session(const std::string& domain,
                                                      const OriginInfo& origin,
                                                      HttpVersion version) {
  const tls::TransportKind kind =
      version == HttpVersion::H3 ? tls::TransportKind::Quic : tls::TransportKind::Tcp;
  const tls::TlsVersion tls_version =
      kind == tls::TransportKind::Quic ? tls::TlsVersion::Tls13 : origin.tls_version;

  tls::HandshakeMode mode = tls::HandshakeMode::Fresh;
  if (tickets_ != nullptr) mode = tickets_->best_mode(domain, sim_.now(), kind);
  if (!config_.allow_zero_rtt && mode == tls::HandshakeMode::ZeroRtt) {
    mode = tls::HandshakeMode::Resumed;
  }

  transport::TransportConfig tconfig = config_.transport;
  tconfig.domain = domain;
  tconfig.handshake_admission = origin.handshake_admission;
  tconfig.connection_release = origin.connection_release;
  // Mature H2 stacks schedule by the browser's fine-grained priority
  // signals; 2022-era H3 stacks supported at best coarse RFC 9218 urgency.
  tconfig.respect_priorities = true;
  tconfig.priority_coarseness = version == HttpVersion::H3 ? 3 : 1;
  auto conn = transport::Connection::create(sim_, *origin.path, kind, tls_version, mode,
                                            rng_.fork(domain).fork(stats_.connections_created),
                                            std::move(tconfig));
  if (tickets_ != nullptr) {
    conn->set_ticket_sink([store = tickets_](tls::SessionTicket t) { store->store(std::move(t)); });
  }
  if (config_.connection_trace_factory) {
    conn->set_trace(config_.connection_trace_factory(domain, version));
  }

  ++stats_.connections_created;
  switch (version) {
    case HttpVersion::H1_1:
      ++stats_.h1_connections;
      obs::count("http.pool.connections.h1");
      obs::tl_count("http.pool.connections.h1", sim_.now());
      break;
    case HttpVersion::H2:
      ++stats_.h2_connections;
      obs::count("http.pool.connections.h2");
      obs::tl_count("http.pool.connections.h2", sim_.now());
      break;
    case HttpVersion::H3:
      ++stats_.h3_connections;
      obs::count("http.pool.connections.h3");
      obs::tl_count("http.pool.connections.h3", sim_.now());
      break;
  }
  if (mode != tls::HandshakeMode::Fresh) {
    ++stats_.resumed_connections;
    obs::count("http.pool.resumed_connections");
    obs::tl_count("http.pool.resumed_connections", sim_.now());
  }
  if (mode == tls::HandshakeMode::ZeroRtt) ++stats_.zero_rtt_connections;

  auto session = Session::create(sim_, std::move(conn), version, config_.session);
  // 1-based, pool-scoped: the id shows up in waterfalls and EntryTimings.
  session->set_connection_id(stats_.connections_created);
  // Death notification: evacuated orphans come back to the pool, which
  // decides between H2 fallback, a fresh same-protocol dial, or giving up.
  std::weak_ptr<Session> weak = session;
  session->set_on_dead([this, domain, version, weak](transport::ConnectionError error,
                                                     std::vector<Session::Orphan> orphans) {
    on_session_dead(domain, version, weak.lock(), error, std::move(orphans));
  });
  session->start();
  return session;
}

std::shared_ptr<Session> ConnectionPool::h1_session(const std::string& domain,
                                                    OriginState& state) {
  // Prefer a fully idle keep-alive connection; otherwise open a new one up to
  // the browser's per-origin cap; otherwise queue on the least-loaded one.
  for (auto& s : state.h1) {
    if (s->in_flight() == 0 && s->queued() == 0) return s;
  }
  if (state.h1.size() < config_.h1_max_connections_per_origin) {
    state.h1.push_back(make_session(domain, *state.info, HttpVersion::H1_1));
    return state.h1.back();
  }
  std::shared_ptr<Session> best;
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  for (auto& s : state.h1) {
    const std::size_t load = s->in_flight() + s->queued();
    if (load < best_load) {
      best_load = load;
      best = s;
    }
  }
  return best;
}

std::shared_ptr<Session> ConnectionPool::session_for(const std::string& domain,
                                                     OriginState& state, HttpVersion version) {
  switch (version) {
    case HttpVersion::H1_1:
      return h1_session(domain, state);
    case HttpVersion::H2: {
      const std::string& key =
          state.info->coalesce_key.empty() ? domain : state.info->coalesce_key;
      auto& slot = h2_sessions_[key];
      if (!slot) slot = make_session(domain, *state.info, HttpVersion::H2);
      return slot;
    }
    case HttpVersion::H3:
      if (!state.h3) state.h3 = make_session(domain, *state.info, HttpVersion::H3);
      return state.h3;
  }
  H3CDN_ASSERT(false);
  return nullptr;
}

void ConnectionPool::fetch(const Request& request, FetchDone done) {
  H3CDN_EXPECTS(!request.domain.empty());
  ++stats_.entries_submitted;
  obs::count("http.entries_submitted");
  obs::tl_count("http.entries_submitted", sim_.now());
  auto& state = origin_state(request.domain);
  HttpVersion version = protocol_for(*state.info);
  if (config_.protocol_hint && state.info->supports_h2) {
    const HttpVersion default_pick = version;
    const auto hint = config_.protocol_hint(request.domain);
    if (hint == HttpVersion::H2) version = HttpVersion::H2;
    if (hint == HttpVersion::H3 && config_.h3_enabled && state.info->supports_h3) {
      version = HttpVersion::H3;
    }
    if (version != default_pick) {
      ++stats_.hint_overrides;
      obs::count("http.hint_overrides");
    }
  }
  // Alt-Svc brokenness: a host whose H3 died routes to H2 until the timed
  // re-probe (h3_broken clears an expired mark as a side effect).
  if (version == HttpVersion::H3 && config_.h3_fallback_enabled && h3_broken(request.domain)) {
    version = HttpVersion::H2;
  }
  // Per-edge circuit breaker (advisory, docs/RESILIENCE.md): an open H3
  // breaker demotes new dials to H2 — never refuses the request outright —
  // so an enabled breaker cannot reduce liveness. allow() also meters the
  // half-open re-probes.
  resilience::Engine* eng = engine();
  if (eng != nullptr && version == HttpVersion::H3 && state.info->supports_h2 &&
      !eng->breakers().get(request.domain, "h3").allow(sim_.now())) {
    version = HttpVersion::H2;
    ++stats_.breaker_demotions;
    ++eng->stats.breaker_demotions;
    obs::count("resilience.breaker.demotions");
    obs::tl_count("resilience.breaker.demotions", sim_.now());
  }

  std::shared_ptr<Session> session = session_for(request.domain, state, version);
  Request routed = request;
  if (config_.think_time) routed.server_think = config_.think_time(routed, version);
  if (config_.server_hold) routed.server_hold = config_.server_hold(routed, version);
  if (eng != nullptr) {
    FetchDone wrapped = with_resilience(routed, version, std::move(done));
    session->submit(routed, std::move(wrapped));
  } else {
    session->submit(routed, std::move(done));
  }
}

FetchDone ConnectionPool::with_resilience(const Request& routed, HttpVersion version,
                                          FetchDone done) {
  resilience::Engine* eng = engine();
  H3CDN_EXPECTS(eng != nullptr);
  // First-result-wins arbitration between the primary dispatch and an
  // optional hedge copy. A typed failure only settles the pair once no other
  // copy is still outstanding, so a hedge can save a request whose primary
  // exhausted its retries.
  struct HedgeState {
    bool settled = false;
    bool hedged = false;
    int outstanding = 1;
    sim::EventId timer = 0;
    FetchDone done;
  };
  auto st = std::make_shared<HedgeState>();
  st->done = std::move(done);
  const std::string domain = routed.domain;
  const TimePoint submitted = sim_.now();

  auto wrap = [this, st, eng, domain](bool is_hedge_copy) -> FetchDone {
    return [this, st, eng, domain, is_hedge_copy](const EntryTimings& t) {
      if (st->settled) return;  // losing copy finishing after the winner
      if (t.failed && st->outstanding > 1) {
        --st->outstanding;  // the other copy may still succeed
        return;
      }
      st->settled = true;
      if (st->timer != 0) {
        sim_.cancel(st->timer);
        st->timer = 0;
      }
      if (st->hedged) {
        if (t.failed) {
          ++eng->stats.hedges_cancelled;
          obs::count("resilience.hedges_cancelled");
          obs::tl_count("resilience.hedges_cancelled", sim_.now());
        } else if (is_hedge_copy) {
          ++eng->stats.hedges_won;
          obs::count("resilience.hedges_won");
          obs::tl_count("resilience.hedges_won", sim_.now());
        } else {
          ++eng->stats.hedges_lost;
          obs::count("resilience.hedges_lost");
          obs::tl_count("resilience.hedges_lost", sim_.now());
        }
      }
      if (!t.failed) {
        eng->hedge_trigger().observe(t.total());
        eng->breakers().get(domain, to_string(t.version)).record(sim_.now(), true);
      }
      auto deliver = std::move(st->done);
      st->done = nullptr;
      deliver(t);
    };
  };

  // Hedge trigger: once the latency tracker is warm, a request still
  // unsettled past the observed tail (p95 by default) gets a duplicate copy,
  // preferably on the OTHER protocol so it rides an independent connection
  // that does not share fate with the primary's transport.
  if (auto delay = eng->hedge_trigger().delay()) {
    Request copy = routed;
    st->timer = sim_.schedule_in(
        *delay, [this, st, eng, copy = std::move(copy), version, submitted, wrap,
                 alive = std::weak_ptr<char>(alive_)]() mutable {
          if (alive.expired()) return;  // pool gone; the page already finished
          st->timer = 0;
          if (st->settled) return;
          st->hedged = true;
          ++st->outstanding;
          ++eng->stats.hedges_launched;
          ++stats_.hedges_launched;
          obs::count("resilience.hedges_launched");
          obs::tl_count("resilience.hedges_launched", sim_.now());
          auto& state = origin_state(copy.domain);
          HttpVersion hedge_version = version;
          if (version == HttpVersion::H3) {
            hedge_version = HttpVersion::H2;
          } else if (state.info->supports_h2 && config_.h3_enabled && state.info->supports_h3 &&
                     !(config_.h3_fallback_enabled && h3_broken(copy.domain))) {
            hedge_version = HttpVersion::H3;
          }
          // Rescued-style submission keeps the ORIGINAL submission time, so
          // a winning hedge reports honest page-level phase timings (the
          // pre-hedge wait lands in its "blocked" phase).
          Session::Orphan dup{std::move(copy), wrap(true), submitted, 0, 0};
          route_rescue(std::move(dup), hedge_version);
        });
  }
  return wrap(false);
}

void ConnectionPool::on_session_dead(const std::string& domain, HttpVersion version,
                                     const std::shared_ptr<Session>& session,
                                     transport::ConnectionError error,
                                     std::vector<Session::Orphan> orphans) {
  ++stats_.connection_deaths;
  obs::count("http.pool.connection_deaths");
  obs::tl_count("http.pool.connection_deaths", sim_.now());
  const bool refused = error == transport::ConnectionError::Refused;
  const trace::FaultKind fault = refused ? trace::FaultKind::Refused
                                 : error == transport::ConnectionError::Blackhole
                                     ? trace::FaultKind::Blackhole
                                 : error == transport::ConnectionError::Killed
                                     ? trace::FaultKind::Outage
                                     : trace::FaultKind::HandshakeTimeout;

  // Deregister the corpse so the next dial creates a fresh connection.
  if (session) {
    auto state_it = origins_.find(domain);
    if (state_it != origins_.end()) {
      auto& state = state_it->second;
      if (state.h3 == session) state.h3.reset();
      std::erase(state.h1, session);
    }
    for (auto it = h2_sessions_.begin(); it != h2_sessions_.end(); ++it) {
      if (it->second == session) {
        h2_sessions_.erase(it);
        break;
      }
    }
  }

  resilience::Engine* eng = engine();

  // Whether a retry would exceed its budgets; None means "retry allowed".
  // Deadlines only exist under the engine; the attempt cap always does.
  auto past_budget = [&](const Session::Orphan& orphan) -> FailureReason {
    const int max_attempts = eng != nullptr ? eng->retry().max_attempts
                                            : config_.max_request_retries;
    if (orphan.attempts >= max_attempts) return FailureReason::RetriesExhausted;
    if (eng != nullptr) {
      const resilience::RetryPolicy& rp = eng->retry();
      if (rp.request_deadline > Duration::zero() &&
          sim_.now() - orphan.submitted >= rp.request_deadline) {
        return FailureReason::DeadlineExceeded;
      }
      if (rp.page_budget > Duration::zero() && sim_.now() - created_at_ >= rp.page_budget) {
        return FailureReason::DeadlineExceeded;
      }
    }
    return FailureReason::None;
  };
  // Range resumption: keep the delivered-byte prefix only when the engine
  // says so; zeroing it reproduces the legacy full-re-download rescue.
  auto prepare_resume = [&](Session::Orphan& orphan) {
    if (eng != nullptr && eng->retry().resume_enabled) {
      if (orphan.bytes_received > 0) {
        const std::size_t saved =
            std::min(orphan.bytes_received, orphan.request.response_bytes);
        ++stats_.requests_resumed;
        ++eng->stats.resumed_requests;
        stats_.resumed_bytes += saved;
        eng->stats.resumed_bytes += saved;
        obs::count("resilience.resumed_requests");
        obs::tl_count("resilience.resumed_requests", sim_.now());
        obs::count("resilience.resumed_bytes", saved);
        obs::tl_count("resilience.resumed_bytes", sim_.now(), saved);
      }
    } else {
      orphan.bytes_received = 0;
    }
  };

  // A refusal means "server busy", not "protocol broken": never mark H3
  // broken for it, retry on the SAME protocol after a jittered exponential
  // backoff so the herd does not re-arrive in lockstep. Refusals are also
  // kept out of the per-edge circuit breaker and the DNS health score below:
  // capacity pushback is not a path or protocol failure.
  if (refused) {
    ++stats_.connections_refused;
    obs::count("http.pool.connections_refused");
    obs::tl_count("http.pool.connections_refused", sim_.now());
    for (auto& orphan : orphans) {
      if (const FailureReason reason = past_budget(orphan); reason != FailureReason::None) {
        fail_orphan(std::move(orphan), version, reason);
        continue;
      }
      ++stats_.requests_rescued;
      ++stats_.refusal_retries;
      obs::count("http.pool.requests_rescued");
      obs::tl_count("http.pool.requests_rescued", sim_.now());
      obs::count("http.pool.refusal_retries");
      obs::tl_count("http.pool.refusal_retries", sim_.now());
      if (eng != nullptr) {
        ++eng->stats.retries;
        obs::count("resilience.retries");
        obs::tl_count("resilience.retries", sim_.now());
      }
      record_fault(trace::EventType::FallbackTriggered, fault);
      prepare_resume(orphan);
      const int exponent = std::max(0, orphan.attempts - 1);
      Duration backoff{config_.refusal_backoff_base.count() << std::min(exponent, 6)};
      backoff += Duration{static_cast<std::int64_t>(
          static_cast<double>(backoff.count()) *
          rng_.uniform(0.0, config_.refusal_backoff_jitter))};
      sim_.schedule_in(backoff, [this, orphan = std::move(orphan), version,
                                 alive = std::weak_ptr<char>(alive_)]() mutable {
        if (alive.expired()) return;  // pool gone; the page already finished
        route_rescue(std::move(orphan), version);
      });
    }
    return;
  }

  // Non-refused deaths feed the per-edge breaker's rolling failure window
  // (one dial-outcome sample per death) and, when the environment wired a
  // failover hook, demote this origin's current address and force the next
  // dial to re-resolve onto a healthier record (docs/RESILIENCE.md).
  if (eng != nullptr) {
    eng->breakers().get(domain, to_string(version)).record(sim_.now(), false);
  }
  if (auto state_it = origins_.find(domain);
      state_it != origins_.end() && state_it->second.info &&
      state_it->second.info->connection_failed) {
    auto notify = state_it->second.info->connection_failed;
    state_it->second.info.reset();
    notify(sim_.now());
  }

  // An H3 death marks the host broken and degrades it to H2 (Chrome's
  // Alt-Svc brokenness). TCP deaths retry on a fresh same-protocol session.
  HttpVersion reroute = version;
  if (version == HttpVersion::H3 && config_.h3_fallback_enabled) {
    h3_broken_until_[domain] = sim_.now() + config_.h3_broken_ttl;
    ++stats_.h3_broken_marks;
    ++stats_.h3_fallbacks;
    obs::count("http.pool.h3_fallbacks");
    obs::tl_count("http.pool.h3_fallbacks", sim_.now());
    record_fault(trace::EventType::H3BrokenMarked, fault);
    reroute = HttpVersion::H2;
  }

  for (auto& orphan : orphans) {
    if (const FailureReason reason = past_budget(orphan); reason != FailureReason::None) {
      fail_orphan(std::move(orphan), version, reason);
      continue;
    }
    ++stats_.requests_rescued;
    obs::count("http.pool.requests_rescued");
    obs::tl_count("http.pool.requests_rescued", sim_.now());
    record_fault(trace::EventType::FallbackTriggered, fault);
    prepare_resume(orphan);
    if (eng != nullptr) {
      // Engine rescues back off (exponential + deterministic jitter) instead
      // of redialling instantly, so a dead edge is not hammered in lockstep.
      ++eng->stats.retries;
      obs::count("resilience.retries");
      obs::tl_count("resilience.retries", sim_.now());
      const Duration backoff = eng->retry().backoff_for(orphan.attempts, rng_);
      sim_.schedule_in(backoff, [this, orphan = std::move(orphan), reroute,
                                 alive = std::weak_ptr<char>(alive_)]() mutable {
        if (alive.expired()) return;  // pool gone; the page already finished
        route_rescue(std::move(orphan), reroute);
      });
    } else {
      route_rescue(std::move(orphan), reroute);
    }
  }
}

void ConnectionPool::fail_orphan(Session::Orphan orphan, HttpVersion version,
                                 FailureReason reason) {
  H3CDN_EXPECTS(reason != FailureReason::None);
  ++stats_.requests_failed;
  obs::count("http.entries_failed");
  obs::tl_count("http.entries_failed", sim_.now());
  if (reason == FailureReason::DeadlineExceeded) {
    ++stats_.deadline_failures;
    if (resilience::Engine* eng = engine()) ++eng->stats.deadline_failures;
    obs::count("resilience.deadline_failures");
    obs::tl_count("resilience.deadline_failures", sim_.now());
  }
  EntryTimings t;
  t.started = orphan.submitted;
  t.finished = sim_.now();
  t.version = version;
  t.attempts = std::max(orphan.attempts, 1);
  t.failed = true;
  t.failure = reason;
  auto done = std::move(orphan.done);
  done(t);
}

void ConnectionPool::route_rescue(Session::Orphan orphan, HttpVersion preferred) {
  // Coalesced H2 sessions serve several domains, so routing is per orphan.
  auto& state = origin_state(orphan.request.domain);
  HttpVersion version = preferred;
  if (!state.info->supports_h2) version = HttpVersion::H1_1;
  if (version == HttpVersion::H3 &&
      (!config_.h3_enabled || !state.info->supports_h3 ||
       (config_.h3_fallback_enabled && h3_broken(orphan.request.domain)))) {
    version = HttpVersion::H2;
  }
  std::shared_ptr<Session> session = session_for(orphan.request.domain, state, version);
  // The protocol may have changed; the server-side cost model is per-protocol.
  if (config_.think_time) {
    orphan.request.server_think = config_.think_time(orphan.request, version);
  }
  // Re-derive the response gate too: after a mid-tier kill the rescue dials
  // the direct path, and the factory then returns an empty hold.
  if (config_.server_hold) {
    orphan.request.server_hold = config_.server_hold(orphan.request, version);
  }
  session->submit_rescued(std::move(orphan));
}

void ConnectionPool::close_all() {
  for (auto& [key, session] : h2_sessions_) session->close();
  for (auto& [domain, state] : origins_) {
    if (state.h3) state.h3->close();
    for (auto& s : state.h1) s->close();
  }
  h2_sessions_.clear();
  origins_.clear();
}

std::size_t ConnectionPool::session_count() const {
  std::size_t n = h2_sessions_.size();
  for (const auto& [domain, state] : origins_) {
    n += (state.h3 ? 1 : 0) + state.h1.size();
  }
  return n;
}

}  // namespace h3cdn::http
