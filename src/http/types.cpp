#include "http/types.h"

namespace h3cdn::http {

const char* to_string(HttpVersion v) {
  switch (v) {
    case HttpVersion::H1_1: return "http/1.1";
    case HttpVersion::H2: return "h2";
    case HttpVersion::H3: return "h3";
  }
  return "?";
}

const char* to_string(FailureReason r) {
  switch (r) {
    case FailureReason::None: return "none";
    case FailureReason::RetriesExhausted: return "retries_exhausted";
    case FailureReason::DeadlineExceeded: return "deadline_exceeded";
  }
  return "?";
}

}  // namespace h3cdn::http
