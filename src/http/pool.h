// Browser-style connection pool.
//
// Reproduces the connection-management rules that drive the paper's Fig. 7
// (connection reuse) and Fig. 8 (resumption):
//   * one multiplexed H2 connection per origin, one H3 connection per origin;
//   * up to 6 parallel H1.1 keep-alive connections per origin;
//   * protocol choice per request: H3 when the browser has QUIC enabled AND
//     the origin advertises H3 (Alt-Svc), otherwise H2, or H1.1 for legacy
//     origins — so with partial H3 adoption a provider's traffic splits
//     across an H3 and an H2 connection, exactly the reuse-dilution effect
//     the paper identifies in §VI-C;
//   * handshake mode chosen from the shared SessionTicketStore, so tickets
//     from earlier visits turn into resumed/0-RTT connections (§VI-D).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "http/session.h"
#include "http/types.h"
#include "net/path.h"
#include "resilience/engine.h"
#include "sim/simulator.h"
#include "tls/ticket_store.h"
#include "trace/trace.h"
#include "transport/connection.h"
#include "util/rng.h"

namespace h3cdn::http {

/// What the "network + server" side reports about an origin at dial time.
struct OriginInfo {
  net::NetPath* path = nullptr;      // must outlive the pool
  bool supports_h2 = true;           // false => HTTP/1.1-only legacy origin
  bool supports_h3 = false;          // advertises Alt-Svc h3
  tls::TlsVersion tls_version = tls::TlsVersion::Tls13;  // for TCP connections
  // H2 connection-coalescing group (RFC 7540 §9.1.1): origins sharing a
  // certificate/IP (a giant CDN's hostnames) report the same non-empty key
  // and share one H2 connection. Empty => the domain itself is the key.
  // QUIC connections never coalesce here (matching 2022 deployments).
  std::string coalesce_key;
  // Server-capacity admission hooks, wired by the environment to the origin's
  // EdgeServer when its capacity model is enabled (see docs/LOAD.md). Copied
  // into each new connection's TransportConfig; empty => idle server.
  std::function<std::optional<Duration>(TimePoint, tls::TransportKind, tls::HandshakeMode)>
      handshake_admission;
  std::function<void()> connection_release;
  // DNS failover hook (docs/RESILIENCE.md). When set, a non-refused
  // connection death fires this AND invalidates the pool's cached OriginInfo,
  // so the next dial re-resolves — the environment demotes the current
  // address's health and hands back a path to the next healthy record.
  // Refusals do not fire it: capacity pushback is not a path failure.
  std::function<void(TimePoint)> connection_failed;
};

using Resolver = std::function<OriginInfo(const std::string& domain)>;

/// Computes server processing ("think") time once the protocol is known.
/// Wired to the CDN edge-server model; may be empty (use Request's value).
using ThinkTimeFn = std::function<Duration(const Request&, HttpVersion)>;

/// Produces the server-side response gate for a request once the protocol is
/// known (transport/server_hold.h). Wired to the relay chain for domains
/// routed through topology hops; returning an empty ServerHold keeps the
/// direct synchronous-think path.
using ServerHoldFactory = std::function<transport::ServerHold(const Request&, HttpVersion)>;

struct PoolConfig {
  bool h3_enabled = true;  // Chrome's --enable-quic switch
  // Optional per-origin protocol override (e.g. core::AdaptiveProtocolSelector).
  // Consulted after capability checks; incompatible hints are ignored.
  std::function<std::optional<HttpVersion>(const std::string& domain)> protocol_hint;
  // Ablation switch: when false, resumed QUIC connections never send 0-RTT
  // early data (isolates the paper's §VI-D resumption mechanism).
  bool allow_zero_rtt = true;
  std::size_t h1_max_connections_per_origin = 6;
  SessionConfig session;
  transport::TransportConfig transport;
  ThinkTimeFn think_time;
  // Applied wherever think_time is (initial dispatch and rescue re-routes),
  // so a rescued request re-routed to the direct path sheds its stale hold.
  ServerHoldFactory server_hold;
  // Graceful degradation (docs/FAULTS.md §3). When an H3 connection dies the
  // pool marks the host "H3 broken" for h3_broken_ttl (Chrome's Alt-Svc
  // brokenness window is ~5 minutes), re-submits the stranded requests over
  // H2, and routes new requests straight to H2 until a timed re-probe.
  bool h3_fallback_enabled = true;
  Duration h3_broken_ttl = sec(300);
  // Dispatch attempts per request across connection deaths; beyond this the
  // entry completes with EntryTimings::failed = true.
  int max_request_retries = 3;
  // Retry backoff after a server admission refusal (ConnectionError::Refused):
  // orphans are re-dialled on the SAME protocol (a refusal says "busy", not
  // "broken") after base * 2^(attempts-1), jittered by up to +refusal_backoff_jitter
  // so a refused thundering herd does not re-arrive in lockstep.
  Duration refusal_backoff_base = msec(50);
  double refusal_backoff_jitter = 0.5;
  // Per-connection trace wiring (obs::TraceAggregator). When set, every new
  // connection records into a trace obtained from this factory, keyed by the
  // origin domain and the protocol the pool picked.
  std::function<std::shared_ptr<trace::ConnectionTrace>(const std::string& domain, HttpVersion)>
      connection_trace_factory;
  // Request-lifecycle resilience engine (docs/RESILIENCE.md). Null — the
  // default — reproduces the pre-resilience pool behaviour bit-for-bit.
  // Non-null and enabled() adds retry backoff with budgets, hedged requests,
  // Range resumption of partial bodies, and per-edge circuit breakers on top
  // of the baseline rescue logic. Owned by the caller (the Browser), so state
  // persists across the per-page pools of a visit.
  resilience::Engine* resilience = nullptr;
};

struct PoolStats {
  std::uint64_t entries_submitted = 0;
  std::uint64_t connections_created = 0;
  std::uint64_t h1_connections = 0;
  std::uint64_t h2_connections = 0;
  std::uint64_t h3_connections = 0;
  std::uint64_t resumed_connections = 0;   // Resumed or ZeroRtt handshakes
  std::uint64_t zero_rtt_connections = 0;
  // Fault recovery (docs/FAULTS.md).
  std::uint64_t connection_deaths = 0;   // sessions whose transport died
  std::uint64_t h3_fallbacks = 0;        // H3 deaths degraded to H2
  std::uint64_t requests_rescued = 0;    // orphans transparently re-submitted
  std::uint64_t requests_failed = 0;     // orphans past the retry budget
  std::uint64_t h3_broken_marks = 0;     // hosts marked "H3 broken"
  std::uint64_t h3_reprobes = 0;         // broken marks expired and re-probed
  // Server-capacity admission (docs/LOAD.md).
  std::uint64_t connections_refused = 0;  // dials refused by server admission
  std::uint64_t refusal_retries = 0;      // orphans re-dialled after backoff
  // Resilience engine (docs/RESILIENCE.md; all zero when the engine is off).
  std::uint64_t requests_resumed = 0;    // rescues that carried a Range offset
  std::uint64_t resumed_bytes = 0;       // body bytes skipped via Range resume
  std::uint64_t hedges_launched = 0;     // duplicate copies dispatched
  std::uint64_t deadline_failures = 0;   // typed DeadlineExceeded failures
  std::uint64_t breaker_demotions = 0;   // H3 dials demoted to H2 by a breaker
  // Adaptive protocol selection (core::AdaptiveProtocolSelector via
  // PoolConfig::protocol_hint, optionally archetype-conditioned).
  std::uint64_t hint_overrides = 0;      // fetches where the hint changed the pick
};

class ConnectionPool {
 public:
  /// `tickets` may be null (no resumption state, every handshake fresh).
  ConnectionPool(sim::Simulator& sim, PoolConfig config, Resolver resolver,
                 tls::SessionTicketStore* tickets, util::Rng rng);

  /// Routes a request to the right session (creating connections on demand).
  void fetch(const Request& request, FetchDone done);

  /// Terminates every connection (the paper terminates all connections after
  /// each page visit).
  void close_all();

  [[nodiscard]] const PoolStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t session_count() const;

  /// Protocol the pool would pick for this origin right now (exposed for the
  /// adaptive-selection example and for tests).
  [[nodiscard]] HttpVersion protocol_for(const OriginInfo& origin) const;

  /// Whether the host is currently marked "H3 broken" (side effect: an
  /// expired mark is cleared and counted as a re-probe).
  [[nodiscard]] bool h3_broken(const std::string& domain);

  /// Attaches a trace sink for fault/recovery events (FallbackTriggered,
  /// H3BrokenMarked, H3ReProbe). Pass nullptr to detach.
  void set_trace(std::shared_ptr<trace::ConnectionTrace> trace) { trace_ = std::move(trace); }

 private:
  struct OriginState {
    std::optional<OriginInfo> info;
    std::shared_ptr<Session> h3;
    std::vector<std::shared_ptr<Session>> h1;
  };

  OriginState& origin_state(const std::string& domain);
  std::shared_ptr<Session> make_session(const std::string& domain, const OriginInfo& origin,
                                        HttpVersion version);
  std::shared_ptr<Session> h1_session(const std::string& domain, OriginState& state);
  std::shared_ptr<Session> session_for(const std::string& domain, OriginState& state,
                                       HttpVersion version);
  void on_session_dead(const std::string& domain, HttpVersion version,
                       const std::shared_ptr<Session>& session, transport::ConnectionError error,
                       std::vector<Session::Orphan> orphans);
  void route_rescue(Session::Orphan orphan, HttpVersion preferred);
  void record_fault(trace::EventType type, trace::FaultKind fault);
  /// The resilience engine, or nullptr when absent or disabled.
  [[nodiscard]] resilience::Engine* engine() const;
  /// Wraps `done` with hedging (first-wins arbitration + p95-trigger timer)
  /// and breaker/latency bookkeeping. Engine must be enabled.
  FetchDone with_resilience(const Request& routed, HttpVersion version, FetchDone done);
  /// Fails one orphan with typed timings. Reason must not be None.
  void fail_orphan(Session::Orphan orphan, HttpVersion version, FailureReason reason);

  sim::Simulator& sim_;
  PoolConfig config_;
  Resolver resolver_;
  tls::SessionTicketStore* tickets_;
  util::Rng rng_;
  std::unordered_map<std::string, OriginState> origins_;
  // H2 sessions keyed by coalescing group (or domain when not coalescable).
  std::unordered_map<std::string, std::shared_ptr<Session>> h2_sessions_;
  // Hosts whose H3 died: no H3 dials until the deadline passes (Alt-Svc
  // brokenness, Chrome behaviour).
  std::unordered_map<std::string, TimePoint> h3_broken_until_;
  std::shared_ptr<trace::ConnectionTrace> trace_;
  PoolStats stats_;
  TimePoint created_at_{0};  // page start, for the resilience page budget
  // Liveness token for deferred work (backoff rescues, hedge timers): those
  // simulator events capture the raw pool pointer, and with hedging a
  // duplicate copy's rescue can legitimately outlive the pool (its logical
  // entry settled via the other copy, the page finished, the Browser dropped
  // the pool). Deferred lambdas hold a weak copy and no-op once it expires.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace h3cdn::http
