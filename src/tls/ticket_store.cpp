#include "tls/ticket_store.h"

#include "obs/metrics.h"

namespace h3cdn::tls {

void SessionTicketStore::store(SessionTicket ticket) {
  affinity_.assert_same_shard();
  obs::count("tls.tickets.stored");
  tickets_[ticket.domain] = std::move(ticket);
}

std::optional<SessionTicket> SessionTicketStore::find(const std::string& domain,
                                                      TimePoint now) const {
  affinity_.assert_same_shard();
  auto it = tickets_.find(domain);
  if (it == tickets_.end()) {
    ++misses_;
    obs::count("tls.tickets.misses");
    return std::nullopt;
  }
  const SessionTicket& t = it->second;
  if (now >= t.issued_at + t.lifetime) {
    ++misses_;
    obs::count("tls.tickets.misses");
    return std::nullopt;
  }
  ++hits_;
  obs::count("tls.tickets.hits");
  return t;
}

HandshakeMode SessionTicketStore::best_mode(const std::string& domain, TimePoint now,
                                            TransportKind transport) const {
  const auto ticket = find(domain, now);
  if (!ticket) return HandshakeMode::Fresh;
  if (transport == TransportKind::Quic) {
    // QUIC is TLS1.3-only; a TLS1.2 ticket (from an old H2 connection to a
    // legacy stack) cannot seed it.
    if (ticket->version != TlsVersion::Tls13) return HandshakeMode::Fresh;
    return ticket->early_data_allowed ? HandshakeMode::ZeroRtt : HandshakeMode::Resumed;
  }
  // Over TCP, browsers resume the TLS session but do NOT send TLS 1.3 early
  // data (Chrome ships with early data disabled), so a resumed H2 connection
  // still pays the full TCP+TLS round trips — this asymmetry against H3's
  // 0-RTT is exactly the paper's §VI-D argument.
  return HandshakeMode::Resumed;
}

void SessionTicketStore::erase(const std::string& domain) {
  affinity_.assert_same_shard();
  tickets_.erase(domain);
}

void SessionTicketStore::clear() {
  affinity_.assert_same_shard();
  tickets_.clear();
}

void SessionTicketStore::remove_expired(TimePoint now) {
  affinity_.assert_same_shard();
  for (auto it = tickets_.begin(); it != tickets_.end();) {
    if (now >= it->second.issued_at + it->second.lifetime) {
      it = tickets_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace h3cdn::tls
