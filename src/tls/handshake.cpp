#include "tls/handshake.h"

#include "obs/metrics.h"
#include "util/check.h"

namespace h3cdn::tls {

int handshake_rtts(TransportKind transport, TlsVersion version, HandshakeMode mode) {
  if (transport == TransportKind::Quic) {
    // QUIC merges the transport and TLS 1.3 handshakes (RFC 9001 §4.1).
    H3CDN_EXPECTS(version == TlsVersion::Tls13);
    switch (mode) {
      case HandshakeMode::Fresh: return 1;
      case HandshakeMode::Resumed: return 1;  // PSK but no early data
      case HandshakeMode::ZeroRtt: return 0;
    }
  }
  // TCP: 1 RTT for SYN/SYN-ACK before TLS can start.
  constexpr int kTcp = 1;
  switch (mode) {
    case HandshakeMode::Fresh:
      return kTcp + (version == TlsVersion::Tls12 ? 2 : 1);
    case HandshakeMode::Resumed:
      // Abbreviated TLS1.2 resumption or TLS1.3 PSK: one TLS round trip.
      return kTcp + 1;
    case HandshakeMode::ZeroRtt:
      // TLS 1.3 early data over TCP: request rides the ClientHello, but the
      // TCP handshake round trip is unavoidable (paper §VI-D).
      return kTcp;
  }
  H3CDN_ASSERT(false);
  return kTcp;
}

int handshake_client_flights(TransportKind transport, TlsVersion version, HandshakeMode mode) {
  // One client-side control packet per round trip, plus the final Finished.
  return handshake_rtts(transport, version, mode) + 1;
}

std::size_t handshake_server_flight_bytes(TlsVersion version, HandshakeMode mode) {
  switch (mode) {
    case HandshakeMode::Fresh:
      // ServerHello + certificate chain (~3-4 KB) + key exchange.
      return version == TlsVersion::Tls12 ? 4200 : 3600;
    case HandshakeMode::Resumed:
    case HandshakeMode::ZeroRtt:
      return 300;  // ServerHello/EncryptedExtensions only
  }
  return 300;
}

Duration handshake_compute_cost(TlsVersion version, HandshakeMode mode) {
  // Called once per certificate-bearing server flight, so it doubles as the
  // per-handshake observation point for the metrics registry.
  Duration cost = usec(150);  // PSK binder check + key schedule only
  switch (mode) {
    case HandshakeMode::Fresh:
      // Signature generation + verification; TLS1.2's RSA-heavy suites are
      // modelled slightly more expensive than TLS1.3's ECDSA defaults.
      cost = version == TlsVersion::Tls12 ? usec(1800) : usec(1200);
      obs::count("tls.handshake.fresh");
      break;
    case HandshakeMode::Resumed:
      obs::count("tls.handshake.resumed");
      break;
    case HandshakeMode::ZeroRtt:
      obs::count("tls.handshake.zero_rtt");
      break;
  }
  obs::observe_ms("tls.handshake.compute_ms", cost);
  return cost;
}

const char* to_string(TlsVersion v) {
  return v == TlsVersion::Tls12 ? "TLSv1.2" : "TLSv1.3";
}

const char* to_string(TransportKind t) { return t == TransportKind::Tcp ? "tcp" : "quic"; }

const char* to_string(HandshakeMode m) {
  switch (m) {
    case HandshakeMode::Fresh: return "fresh";
    case HandshakeMode::Resumed: return "resumed";
    case HandshakeMode::ZeroRtt: return "0-rtt";
  }
  return "?";
}

}  // namespace h3cdn::tls
