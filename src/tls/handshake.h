// Secure-connection establishment model.
//
// The paper (§II-A, §VI-D) reasons about connection setup purely in terms of
// round trips:
//   - H2 over TCP+TLS1.2:    3 RTT (1 TCP + 2 TLS)
//   - H2 over TCP+TLS1.3:    2 RTT (1 TCP + 1 TLS)
//   - H2 resumed (TLS1.3 PSK + early data): 1 RTT (TCP handshake remains)
//   - H3 (QUIC, TLS1.3 integrated): 1 RTT fresh, 0 RTT resumed
// This header encodes exactly that table, plus the crypto compute costs that
// make resumption cheaper even at equal RTT counts.
#pragma once

#include "util/types.h"

namespace h3cdn::tls {

enum class TlsVersion { Tls12, Tls13 };

/// The transport carrying TLS. QUIC implies TLS 1.3 (RFC 9001).
enum class TransportKind { Tcp, Quic };

/// How a handshake was (or would be) performed.
enum class HandshakeMode {
  Fresh,        // full handshake, certificate exchange
  Resumed,      // PSK-based resumption (session ticket)
  ZeroRtt,      // PSK resumption + early data: request flies in first packet
};

/// Number of round trips that must complete before the first byte of
/// application data can be *sent* by the client.
int handshake_rtts(TransportKind transport, TlsVersion version, HandshakeMode mode);

/// Number of small control packets the client sends during the handshake
/// (used to put handshake traffic through the lossy link).
int handshake_client_flights(TransportKind transport, TlsVersion version, HandshakeMode mode);

/// Approximate size in bytes of the server's handshake flight. Certificates
/// dominate fresh handshakes (several KB); resumption skips them.
std::size_t handshake_server_flight_bytes(TlsVersion version, HandshakeMode mode);

/// CPU cost model for the asymmetric crypto on each side. Fresh handshakes
/// pay signature verification; resumed ones only symmetric key derivation.
Duration handshake_compute_cost(TlsVersion version, HandshakeMode mode);

/// Printable names, for reports and HAR output.
const char* to_string(TlsVersion v);
const char* to_string(TransportKind t);
const char* to_string(HandshakeMode m);

}  // namespace h3cdn::tls
