// Client-side TLS session ticket store.
//
// This is the piece of state that survives "close all connections, clear the
// cache" between consecutive page visits in the paper's §VI-D experiment:
// tickets allow the next connection to the same domain to resume (H2) or to
// send 0-RTT early data (H3). The store is keyed by domain, mirroring how
// browsers scope tickets to the SNI they were issued under.
//
// Sharding contract: a store belongs to exactly ONE probe shard. The study
// engine creates it inside ProbeRunTask::run() and it dies with the shard,
// so ticket sharing between consecutive-mode visits happens only within that
// shard's site sequence — never across (vantage, probe, mode) runs, and
// never across pool worker threads. The store is deliberately unsynchronized
// (plain map, mutable hit/miss counters); a ShardAffinity guard asserts the
// contract on every access.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "tls/handshake.h"
#include "util/shard_affinity.h"
#include "util/types.h"

namespace h3cdn::tls {

struct SessionTicket {
  std::string domain;
  TimePoint issued_at{0};
  Duration lifetime = sec(7200);  // RFC 8446 caps ticket lifetime at 7 days; servers commonly use 2h
  TlsVersion version = TlsVersion::Tls13;
  bool early_data_allowed = true;  // server sent max_early_data_size > 0
};

class SessionTicketStore {
 public:
  /// Saves (or replaces) the ticket for its domain.
  void store(SessionTicket ticket);

  /// Returns the ticket for `domain` if present and unexpired at `now`.
  [[nodiscard]] std::optional<SessionTicket> find(const std::string& domain, TimePoint now) const;

  /// Best handshake mode available for `domain` at `now` on `transport`:
  /// ZeroRtt if an early-data-capable TLS1.3 ticket exists, Resumed for other
  /// valid tickets, Fresh otherwise. Over TCP, early data additionally
  /// requires the ticket to be TLS 1.3.
  [[nodiscard]] HandshakeMode best_mode(const std::string& domain, TimePoint now,
                                        TransportKind transport) const;

  /// Removes the ticket for one domain (e.g. server rejected resumption).
  void erase(const std::string& domain);

  /// Drops everything (a fresh browser profile).
  void clear();

  /// Drops expired tickets.
  void remove_expired(TimePoint now);

  [[nodiscard]] std::size_t size() const { return tickets_.size(); }

  /// Counters: how many times find() succeeded/failed (used to report the
  /// paper's "number of resumed connections").
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  std::unordered_map<std::string, SessionTicket> tickets_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  // First access binds the owning shard's thread; any later access from a
  // different thread aborts (see the sharding contract above).
  util::ShardAffinity affinity_;
};

}  // namespace h3cdn::tls
