#include "browser/waterfall.h"

#include <algorithm>
#include <unordered_map>

namespace h3cdn::browser {

obs::Waterfall make_waterfall(const HarPage& page, const std::string& vantage) {
  obs::Waterfall wf;
  wf.site = page.site;
  wf.vantage = vantage;
  wf.h3_enabled = page.h3_enabled;
  wf.page_load_time_ms = to_ms(page.page_load_time);
  wf.connections_created = page.connections_created;
  wf.connection_deaths = page.connection_deaths;
  wf.h3_fallbacks = page.h3_fallbacks;
  wf.requests_rescued = page.requests_rescued;
  wf.requests_failed = page.requests_failed;

  // Entries land in completion order; initiator edges reference resource ids,
  // which the waterfall resolves to entry indices.
  std::unordered_map<std::int64_t, std::int64_t> index_of_resource;
  for (std::size_t i = 0; i < page.entries.size(); ++i) {
    index_of_resource.emplace(static_cast<std::int64_t>(page.entries[i].resource_id),
                              static_cast<std::int64_t>(i));
  }

  wf.entries.reserve(page.entries.size());
  for (const HarEntry& e : page.entries) {
    obs::WaterfallEntry out;
    out.url = e.url;
    out.resource_id = static_cast<std::int64_t>(e.resource_id);
    if (e.initiator_id >= 0) {
      auto it = index_of_resource.find(e.initiator_id);
      if (it != index_of_resource.end()) out.initiator_index = it->second;
    }
    out.domain = e.domain;
    out.type = web::to_string(e.type);
    out.protocol = http::to_string(e.timings.version);
    out.connection_id = e.timings.connection_id;
    out.attempts = e.timings.attempts;
    out.from_cache = e.from_cache;
    out.reused_connection = e.timings.reused_connection;
    out.resumed = e.timings.resumed;
    out.failed = e.timings.failed;
    out.response_bytes = e.response_bytes;

    // The entry's total latency spans DNS (which the browser runs before
    // submitting to the pool) plus the pool-side phases.
    const Duration total = e.timings.dns + e.timings.total();
    out.start_ms = to_ms(e.timings.started - page.started) - to_ms(e.timings.dns);
    if (e.timings.failed) {
      // Phase timings of an abandoned entry are meaningless; charge the whole
      // latency to "blocked" so the row still spans its real wall time.
      out.blocked_ms = to_ms(total);
    } else {
      out.dns_ms = to_ms(e.timings.dns);
      out.connect_ms = to_ms(e.timings.connect);
      out.send_ms = to_ms(e.timings.send);
      out.wait_ms = to_ms(e.timings.wait);
      out.receive_ms = to_ms(e.timings.receive);
      // Stalls live inside wait+receive: a gap ahead of byte 0 stalls the
      // stream before its first in-order byte, i.e. still in the wait phase.
      // Clamp so ms rounding cannot push them past that envelope.
      const double stall_envelope = out.wait_ms + out.receive_ms;
      out.hol_stall_ms = std::min(to_ms(e.timings.hol_stall), stall_envelope);
      out.retx_wait_ms =
          std::min(to_ms(e.timings.retx_wait), stall_envelope - out.hol_stall_ms);
      // Recomputed as the residual so the phases sum to the entry total
      // exactly (the session's own clamp-based value can differ by rounding).
      out.blocked_ms = std::max(0.0, to_ms(total) - out.dns_ms - out.connect_ms - out.send_ms -
                                         out.wait_ms - out.receive_ms);
    }

    // Relay-chain provenance: flatten the nested UpstreamRecord chain into
    // hop rows, outermost tier first. Each hop gets the same stall-clamp /
    // blocked-residual treatment as the entry itself, so a hop's phases sum
    // to its wall total exactly. A cache-hit hop stays all-zero.
    for (auto rec = e.timings.upstream; rec != nullptr; rec = rec->timings.upstream) {
      obs::UpstreamHop hop;
      hop.tier = rec->tier;
      hop.cache_hit = rec->cache_hit;
      if (!rec->cache_hit) {
        const http::EntryTimings& t = rec->timings;
        hop.protocol = http::to_string(t.version);
        hop.reused_connection = t.reused_connection;
        hop.resumed = t.resumed;
        hop.failed = t.failed;
        if (t.failed) {
          hop.blocked_ms = to_ms(t.total());
        } else {
          hop.connect_ms = to_ms(t.connect);
          hop.send_ms = to_ms(t.send);
          hop.wait_ms = to_ms(t.wait);
          hop.receive_ms = to_ms(t.receive);
          const double hop_envelope = hop.wait_ms + hop.receive_ms;
          hop.hol_stall_ms = std::min(to_ms(t.hol_stall), hop_envelope);
          hop.retx_wait_ms =
              std::min(to_ms(t.retx_wait), hop_envelope - hop.hol_stall_ms);
          hop.blocked_ms = std::max(0.0, to_ms(t.total()) - hop.connect_ms - hop.send_ms -
                                             hop.wait_ms - hop.receive_ms);
        }
      }
      out.upstream_hops.push_back(std::move(hop));
      if (rec->cache_hit) break;  // a hit terminates the chain
    }

    if (e.from_cache) {
      out.annotation = "cache";
    } else if (e.timings.failed) {
      out.annotation = "failed";
    } else if (e.timings.attempts > 1) {
      out.annotation = "rescued";
    }
    wf.entries.push_back(std::move(out));
  }
  return wf;
}

}  // namespace h3cdn::browser
