#include "browser/waterfall.h"

#include <algorithm>
#include <unordered_map>

namespace h3cdn::browser {

obs::Waterfall make_waterfall(const HarPage& page, const std::string& vantage) {
  obs::Waterfall wf;
  wf.site = page.site;
  wf.vantage = vantage;
  wf.h3_enabled = page.h3_enabled;
  wf.page_load_time_ms = to_ms(page.page_load_time);
  wf.connections_created = page.connections_created;
  wf.connection_deaths = page.connection_deaths;
  wf.h3_fallbacks = page.h3_fallbacks;
  wf.requests_rescued = page.requests_rescued;
  wf.requests_failed = page.requests_failed;

  // Entries land in completion order; initiator edges reference resource ids,
  // which the waterfall resolves to entry indices.
  std::unordered_map<std::int64_t, std::int64_t> index_of_resource;
  for (std::size_t i = 0; i < page.entries.size(); ++i) {
    index_of_resource.emplace(static_cast<std::int64_t>(page.entries[i].resource_id),
                              static_cast<std::int64_t>(i));
  }

  wf.entries.reserve(page.entries.size());
  for (const HarEntry& e : page.entries) {
    obs::WaterfallEntry out;
    out.url = e.url;
    out.resource_id = static_cast<std::int64_t>(e.resource_id);
    if (e.initiator_id >= 0) {
      auto it = index_of_resource.find(e.initiator_id);
      if (it != index_of_resource.end()) out.initiator_index = it->second;
    }
    out.domain = e.domain;
    out.type = web::to_string(e.type);
    out.protocol = http::to_string(e.timings.version);
    out.connection_id = e.timings.connection_id;
    out.attempts = e.timings.attempts;
    out.from_cache = e.from_cache;
    out.reused_connection = e.timings.reused_connection;
    out.resumed = e.timings.resumed;
    out.failed = e.timings.failed;
    out.response_bytes = e.response_bytes;

    // The entry's total latency spans DNS (which the browser runs before
    // submitting to the pool) plus the pool-side phases.
    const Duration total = e.timings.dns + e.timings.total();
    out.start_ms = to_ms(e.timings.started - page.started) - to_ms(e.timings.dns);
    if (e.timings.failed) {
      // Phase timings of an abandoned entry are meaningless; charge the whole
      // latency to "blocked" so the row still spans its real wall time.
      out.blocked_ms = to_ms(total);
    } else {
      out.dns_ms = to_ms(e.timings.dns);
      out.connect_ms = to_ms(e.timings.connect);
      out.send_ms = to_ms(e.timings.send);
      out.wait_ms = to_ms(e.timings.wait);
      out.receive_ms = to_ms(e.timings.receive);
      // Stalls live inside wait+receive: a gap ahead of byte 0 stalls the
      // stream before its first in-order byte, i.e. still in the wait phase.
      // Clamp so ms rounding cannot push them past that envelope.
      const double stall_envelope = out.wait_ms + out.receive_ms;
      out.hol_stall_ms = std::min(to_ms(e.timings.hol_stall), stall_envelope);
      out.retx_wait_ms =
          std::min(to_ms(e.timings.retx_wait), stall_envelope - out.hol_stall_ms);
      // Recomputed as the residual so the phases sum to the entry total
      // exactly (the session's own clamp-based value can differ by rounding).
      out.blocked_ms = std::max(0.0, to_ms(total) - out.dns_ms - out.connect_ms - out.send_ms -
                                         out.wait_ms - out.receive_ms);
    }

    if (e.from_cache) {
      out.annotation = "cache";
    } else if (e.timings.failed) {
      out.annotation = "failed";
    } else if (e.timings.attempts > 1) {
      out.annotation = "rescued";
    }
    wf.entries.push_back(std::move(out));
  }
  return wf;
}

}  // namespace h3cdn::browser
