// HAR import: parses archives produced by to_har_json() (and tolerates
// HAR-1.2-shaped documents generally) back into HarPage, closing the
// export/import round trip the paper's Chrome->HAR->analysis pipeline has.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "browser/har.h"

namespace h3cdn::browser {

struct HarImportError {
  std::string message;
};

/// Parses one exported archive. Returns nullopt (and fills `error`) when the
/// document is not parseable as a single-page HAR.
std::optional<HarPage> from_har_json(std::string_view json, HarImportError* error = nullptr);

}  // namespace h3cdn::browser
