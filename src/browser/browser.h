// Page-loading browser emulator.
//
// Mirrors the measurement client of §III-B: Chrome 108 with --enable-quic on
// or off (our h3_enabled flag), separate profiles per protocol (fresh pool
// per visit), "all connections terminated and caches cleared" between visits
// (pool discarded; only the TLS session-ticket store optionally survives,
// which is exactly the state that §VI-D's consecutive-visit experiment
// exercises).
//
// Load model: fetch the root HTML; on completion, discover wave-0
// subresources at a parser-paced stagger; wave-1 resources (font/CSS chains)
// are discovered when their trigger resource finishes. onLoad (PLT) fires
// when every entry has completed.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>

#include "browser/environment.h"
#include "browser/har.h"
#include "http/pool.h"
#include "resilience/engine.h"
#include "sim/simulator.h"
#include "tls/ticket_store.h"
#include "util/rng.h"
#include "web/resource.h"

namespace h3cdn::browser {

struct BrowserConfig {
  bool h3_enabled = true;                      // Chrome's --enable-quic
  bool allow_zero_rtt = true;                  // ablation: disable 0-RTT resumption
  bool dns_enabled = true;                     // resolve names before fetching
  // Repeat-view mode (the First/Repeat distinction of Saverimoutou et al.,
  // paper ref [21]): cacheable responses persist across visits on the same
  // Browser and are served locally on later visits.
  bool http_cache_enabled = false;
  // Optional per-origin protocol override (see http::PoolConfig::protocol_hint);
  // lets an adaptive selector steer the pool.
  std::function<std::optional<http::HttpVersion>(const std::string&)> protocol_hint;
  Duration parse_delay_per_resource = usec(300);  // discovery stagger
  Duration wave1_discovery_delay = msec(2);    // after the trigger completes
  http::SessionConfig session;
  transport::TransportConfig transport;
  std::size_t h1_max_connections_per_origin = 6;
  // Request-lifecycle resilience engine (docs/RESILIENCE.md). Disabled by
  // default — the seed study measures the raw protocols. When enabled, the
  // Browser owns one engine for its lifetime (breaker state and latency
  // history persist across the visit's pages) and hands it to each per-page
  // pool.
  resilience::Options resilience;
  // Observability wiring, both optional. `pool_trace` receives pool-level
  // fault/recovery events (FallbackTriggered, H3BrokenMarked, ...);
  // `connection_trace_factory` hands every new connection its own trace —
  // typically both come from one obs::TraceAggregator so packet-level and
  // pool-level events merge onto a single qlog timeline.
  std::shared_ptr<trace::ConnectionTrace> pool_trace;
  std::function<std::shared_ptr<trace::ConnectionTrace>(const std::string&, http::HttpVersion)>
      connection_trace_factory;
};

struct PageLoadResult {
  HarPage har;
  http::PoolStats pool_stats;
};

class Browser {
 public:
  /// `tickets` may be null: every visit then starts with no resumption state.
  Browser(sim::Simulator& sim, Environment& env, tls::SessionTicketStore* tickets,
          BrowserConfig config, util::Rng rng);

  /// Schedules a page visit starting at the current simulated time. The
  /// callback fires at onLoad. The caller drives the simulator (sim.run()).
  void visit(const web::WebPage& page, std::function<void(PageLoadResult)> on_load);

  /// Synchronous convenience: visit + sim.run() to completion.
  PageLoadResult visit_and_run(const web::WebPage& page);

  /// Empties the HTTP cache (e.g. between First and Repeat measurements).
  void clear_http_cache() { http_cache_.clear(); }

  [[nodiscard]] std::size_t http_cache_size() const { return http_cache_.size(); }
  [[nodiscard]] const BrowserConfig& config() const { return config_; }

  /// The browser-lifetime resilience engine (meaningful when
  /// config().resilience.enabled; present either way for stats access).
  [[nodiscard]] resilience::Engine& resilience_engine() { return engine_; }

 private:
  struct VisitState;

  // `initiator_id` is the resource whose completion revealed this fetch
  // (-1 for the root document); recorded as HarEntry::initiator_id.
  void fetch_resource(const std::shared_ptr<VisitState>& visit, const web::Resource& resource,
                      std::int64_t initiator_id);
  void on_entry_done(const std::shared_ptr<VisitState>& visit, const web::Resource& resource,
                     std::int64_t initiator_id, const http::EntryTimings& timings,
                     bool from_cache = false);
  void maybe_finish(const std::shared_ptr<VisitState>& visit);

  sim::Simulator& sim_;
  Environment& env_;
  tls::SessionTicketStore* tickets_;
  BrowserConfig config_;
  util::Rng rng_;
  resilience::Engine engine_;  // per-browser: persists across page visits
  std::unordered_set<std::string> http_cache_;  // by URL; survives visits
};

}  // namespace h3cdn::browser
