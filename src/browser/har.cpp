#include "browser/har.h"

#include "util/json.h"

namespace h3cdn::browser {

std::size_t HarPage::reused_connection_count() const {
  std::size_t n = 0;
  for (const auto& e : entries)
    if (e.is_reused_connection()) ++n;
  return n;
}

std::size_t HarPage::failed_entry_count() const {
  std::size_t n = 0;
  for (const auto& e : entries)
    if (e.timings.failed) ++n;
  return n;
}

std::size_t HarPage::count_version(http::HttpVersion v) const {
  std::size_t n = 0;
  for (const auto& e : entries)
    if (e.timings.version == v) ++n;
  return n;
}

std::string to_har_json(const HarPage& page) {
  util::JsonWriter w;
  w.begin_object();
  w.key("log").begin_object();
  w.kv("version", "1.2");
  w.key("creator").begin_object();
  w.kv("name", "h3cdn-simulated-browser");
  w.kv("version", "1.0");
  w.end_object();

  w.key("pages").begin_array();
  w.begin_object();
  w.kv("id", page.site);
  w.kv("title", page.site);
  w.key("pageTimings").begin_object();
  w.kv("onLoad", to_ms(page.page_load_time));
  w.end_object();
  w.kv("_h3Enabled", page.h3_enabled);
  w.kv("_connectionsCreated", page.connections_created);
  w.kv("_resumedConnections", page.resumed_connections);
  w.kv("_zeroRttConnections", page.zero_rtt_connections);
  w.end_object();
  w.end_array();

  w.key("entries").begin_array();
  for (const auto& e : page.entries) {
    w.begin_object();
    w.kv("pageref", page.site);
    w.kv("startedDateTime", to_ms(e.timings.started));
    w.kv("time", to_ms(e.timings.total()));
    w.key("request").begin_object();
    w.kv("method", "GET");
    w.kv("url", e.url);
    w.kv("httpVersion", http::to_string(e.timings.version));
    w.end_object();
    w.key("response").begin_object();
    w.kv("status", 200);
    w.kv("bodySize", e.response_bytes);
    w.key("headers").begin_array();
    for (const auto& [k, v] : e.response_headers) {
      w.begin_object();
      w.kv("name", k);
      w.kv("value", v);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    w.key("timings").begin_object();
    w.kv("blocked", to_ms(e.timings.blocked));
    w.kv("dns", to_ms(e.timings.dns));
    w.kv("connect", to_ms(e.timings.connect));
    w.kv("send", to_ms(e.timings.send));
    w.kv("wait", to_ms(e.timings.wait));
    w.kv("receive", to_ms(e.timings.receive));
    w.end_object();
    w.kv("_resourceId", static_cast<std::uint64_t>(e.resource_id));
    // Discovery edge (Chrome's _initiator analogue): which resource's parse
    // triggered this fetch; -1 = root. Round-trips through har_import so
    // imported pages keep the real dependency DAG in critical-path walks.
    w.kv("_initiatorId", static_cast<double>(e.initiator_id));
    w.kv("_resourceType", web::to_string(e.type));
    w.kv("_reusedConnection", e.is_reused_connection());
    w.kv("_handshakeMode", tls::to_string(e.timings.handshake_mode));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace h3cdn::browser
