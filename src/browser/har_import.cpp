#include "browser/har_import.h"

#include "util/json_parse.h"

namespace h3cdn::browser {

namespace {

http::HttpVersion parse_version(const std::string& s) {
  if (s == "h3") return http::HttpVersion::H3;
  if (s == "h2") return http::HttpVersion::H2;
  return http::HttpVersion::H1_1;
}

tls::HandshakeMode parse_mode(const std::string& s) {
  if (s == "resumed") return tls::HandshakeMode::Resumed;
  if (s == "0-rtt") return tls::HandshakeMode::ZeroRtt;
  return tls::HandshakeMode::Fresh;
}

web::ResourceType parse_type(const std::string& s) {
  if (s == "html") return web::ResourceType::Html;
  if (s == "css") return web::ResourceType::Css;
  if (s == "script") return web::ResourceType::Script;
  if (s == "image") return web::ResourceType::Image;
  if (s == "font") return web::ResourceType::Font;
  if (s == "media") return web::ResourceType::Media;
  return web::ResourceType::Other;
}

std::string domain_of_url(const std::string& url) {
  const auto scheme = url.find("://");
  if (scheme == std::string::npos) return url;
  const auto host_start = scheme + 3;
  const auto slash = url.find('/', host_start);
  return url.substr(host_start, slash == std::string::npos ? std::string::npos
                                                           : slash - host_start);
}

bool fail(HarImportError* error, const std::string& message) {
  if (error != nullptr) error->message = message;
  return false;
}

bool import_entries(const util::JsonValue& log, HarPage& page, HarImportError* error) {
  const util::JsonValue* entries = log.find("entries");
  if (entries == nullptr || !entries->is_array()) return fail(error, "missing log.entries");

  for (const auto& e : entries->as_array()) {
    if (!e.is_object()) return fail(error, "entry is not an object");
    HarEntry out;
    out.resource_id = static_cast<std::uint32_t>(e.number_or("_resourceId", 0));
    // Absent in foreign HARs: -1 keeps the start-time-ordering fallback.
    out.initiator_id = static_cast<std::int64_t>(e.number_or("_initiatorId", -1.0));
    out.type = parse_type(e.string_or("_resourceType", "other"));

    if (const util::JsonValue* req = e.find("request")) {
      out.url = req->string_or("url", "");
      out.timings.version = parse_version(req->string_or("httpVersion", "h2"));
    }
    out.domain = domain_of_url(out.url);

    if (const util::JsonValue* resp = e.find("response")) {
      out.response_bytes = static_cast<std::size_t>(resp->number_or("bodySize", 0));
      if (const util::JsonValue* headers = resp->find("headers");
          headers != nullptr && headers->is_array()) {
        for (const auto& h : headers->as_array()) {
          out.response_headers.emplace_back(h.string_or("name", ""), h.string_or("value", ""));
        }
      }
    }

    if (const util::JsonValue* t = e.find("timings")) {
      out.timings.blocked = from_ms(t->number_or("blocked", 0));
      out.timings.connect = from_ms(t->number_or("connect", 0));
      out.timings.send = from_ms(t->number_or("send", 0));
      out.timings.wait = from_ms(t->number_or("wait", 0));
      out.timings.receive = from_ms(t->number_or("receive", 0));
    }
    out.timings.started = from_ms(e.number_or("startedDateTime", 0));
    out.timings.finished = out.timings.started + from_ms(e.number_or("time", 0));
    out.timings.handshake_mode = parse_mode(e.string_or("_handshakeMode", "fresh"));
    out.timings.reused_connection = e.bool_or("_reusedConnection", false);
    page.entries.push_back(std::move(out));
  }
  return true;
}

}  // namespace

std::optional<HarPage> from_har_json(std::string_view json, HarImportError* error) {
  util::JsonParseError parse_error;
  const auto doc = util::parse_json(json, &parse_error);
  if (!doc) {
    if (error != nullptr) error->message = "JSON parse error: " + parse_error.message;
    return std::nullopt;
  }
  const util::JsonValue* log = doc->find("log");
  if (log == nullptr || !log->is_object()) {
    if (error != nullptr) error->message = "missing top-level 'log' object";
    return std::nullopt;
  }

  HarPage page;
  if (const util::JsonValue* pages = log->find("pages");
      pages != nullptr && pages->is_array() && !pages->as_array().empty()) {
    const auto& p = pages->as_array().front();
    page.site = p.string_or("id", "");
    page.h3_enabled = p.bool_or("_h3Enabled", false);
    page.connections_created =
        static_cast<std::uint64_t>(p.number_or("_connectionsCreated", 0));
    page.resumed_connections =
        static_cast<std::uint64_t>(p.number_or("_resumedConnections", 0));
    page.zero_rtt_connections =
        static_cast<std::uint64_t>(p.number_or("_zeroRttConnections", 0));
    if (const util::JsonValue* pt = p.find("pageTimings")) {
      page.page_load_time = from_ms(pt->number_or("onLoad", 0));
    }
  } else {
    if (error != nullptr) error->message = "missing log.pages";
    return std::nullopt;
  }

  if (!import_entries(*log, page, error)) return std::nullopt;
  return page;
}

}  // namespace h3cdn::browser
