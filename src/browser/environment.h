// Per-probe network environment: one NetPath + server model per domain.
//
// Mirrors the paper's measurement setup (Fig. 1): a probe at a vantage point
// reaches each CDN provider's nearby edge over a short path, and each
// first-party origin over a longer one. A netem-style loss rate can be
// applied uniformly (the Fig. 9 sweeps), exactly like the paper's use of
// Linux Traffic Control on the probes.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "cdn/edge_server.h"
#include "cdn/origin_server.h"
#include "dns/resolver.h"
#include "http/pool.h"
#include "net/link_profile.h"
#include "net/path.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "web/domains.h"
#include "web/resource.h"

namespace h3cdn::topology {
class Chain;
}  // namespace h3cdn::topology

namespace h3cdn::browser {

/// One of the paper's three CloudLab sites.
struct VantageConfig {
  std::string name = "utah";
  double rtt_scale = 1.0;       // geography: scales every path RTT
  double loss_rate = 0.0;       // injected tc/netem-style loss (on the probe NIC)
  double baseline_loss_rate = 0.0005;  // residual real-Internet loss; netem adds on top
  double jitter_ms = 1.2;       // per-packet jitter bound (FIFO, no reordering)
  double probe_bandwidth_bps = 1e9;  // probe NIC; per-path bw is min(this, server)
  // The probe's shared access link: every connection's traffic serializes
  // through it (and the netem loss is applied there, as `tc` on the probe
  // interface would). This couples concurrent connections like a real NIC.
  double access_bandwidth_bps = 400e6;
  double access_latency_ms = 1.0;
  // Stub resolver setup for this probe (cold-path behaviour; measured visits
  // run against a pre-warmed cache, matching the paper's second-visit
  // methodology).
  dns::ResolverConfig dns;
  // Ablation switch: when false, H2 connections never coalesce across a
  // provider's hostnames (isolates the paper's §VI-C reuse mechanism).
  bool h2_coalescing_enabled = true;
  // Salt for server-side timing randomness. Paired H2/H3 runs share path
  // seeds (so RTTs align) but use different salts here: the two protocol
  // visits happen at different wall times in the paper, so server service
  // times are independent noise, not common random numbers.
  std::uint64_t server_noise_salt = 0;
  // Server-capacity model for privately owned edge servers (disabled by
  // default: single-probe experiments measure an idle edge). The load
  // subsystem usually supplies a shared ServerDirectory instead, but tests
  // exercise capacity through a private environment with this.
  cdn::EdgeCapacityConfig edge_capacity;
  // Probe-wide fault profile, installed on the shared access links — the
  // same place tc/netem impairments live on a real probe. Bursty loss,
  // outages and RTT spikes here hit every connection of the visit; see
  // docs/FAULTS.md. An empty profile costs nothing.
  net::FaultProfile fault_profile;
  // DNS-failover fault (docs/RESILIENCE.md): when `dns.addresses_per_record`
  // is > 1, this profile afflicts ONLY each domain's address-0 path, so the
  // first resolved record is degraded while the alternates stay clean — the
  // scenario where per-record health scoring visibly rescues the page.
  net::FaultProfile primary_path_fault;
};

/// Applies a named last-mile preset (net::LinkProfile) onto a vantage:
/// access bandwidth/latency, jitter, RTT scale, baseline loss, and the
/// profile's fault layer (merged into `fault_profile`).
void apply_link_profile(VantageConfig& vantage, const net::LinkProfile& profile);

/// Standard three-site deployment from §III-B.
std::vector<VantageConfig> default_vantage_points();

/// Globally distributed probes — the paper's future-work item 3 ("it is
/// useful to conduct measurements from geographically diverse vantage
/// locations"): the US sites plus Europe, South America and Asia, with
/// correspondingly longer paths to the (US-calibrated) edges and origins.
std::vector<VantageConfig> global_vantage_points();

/// Provides the server endpoints an Environment talks to. By default every
/// Environment privately owns one edge/origin per domain (an idle server per
/// probe — the paper's measurement setup). A load fleet (src/load/) passes a
/// shared directory instead so thousands of concurrent clients contend for
/// the SAME servers; queueing and admission then couple the clients.
class ServerDirectory {
 public:
  virtual ~ServerDirectory() = default;
  /// The edge serving a CDN domain (nullptr for non-CDN domains).
  virtual cdn::EdgeServer* edge(const std::string& domain) = 0;
  /// The origin serving a first-party domain (nullptr for CDN domains).
  virtual cdn::OriginServer* origin(const std::string& domain) = 0;
};

class Environment {
 public:
  /// `servers`, when non-null, must outlive the environment; null keeps the
  /// classic private-server-per-domain behaviour.
  Environment(sim::Simulator& sim, const web::DomainUniverse& universe, VantageConfig vantage,
              util::Rng rng, ServerDirectory* servers = nullptr);

  /// Lazily materializes the path + server for a domain.
  http::OriginInfo resolve(const std::string& domain);

  /// Server processing time for a request (routes to edge or origin model).
  Duration think(const http::Request& request, http::HttpVersion version);

  /// Pre-warms edge caches for every CDN resource of a page and the stub
  /// DNS cache for every domain on it (the paper's first visit, which exists
  /// to ensure edge-served measurements).
  void warm_page(const web::WebPage& page);

  /// The probe's stub resolver.
  [[nodiscard]] dns::Resolver& dns() { return *resolver_; }

  /// Changes the injected loss rate on all existing and future paths.
  void set_loss_rate(double loss_rate);

  /// Adds a scheduled outage / RTT spike to both shared access links
  /// mid-run (e.g. relative to a page start). The constructor installs
  /// injectors whenever `vantage.fault_profile` is non-empty; these helpers
  /// install empty-profile injectors on demand otherwise.
  void add_outage(const net::Outage& outage);
  void add_rtt_spike(const net::RttSpike& spike);

  /// The shared access links (probe NIC), for tests and fault bookkeeping.
  [[nodiscard]] net::Link& access_uplink() { return *access_up_; }
  [[nodiscard]] net::Link& access_downlink() { return *access_down_; }

  [[nodiscard]] const VantageConfig& vantage() const { return vantage_; }
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }

  /// Routes CDN domains through a relay chain (src/topology/). Non-owning;
  /// the chain must outlive the environment and share its Simulator. Must be
  /// set before the first resolve. Null (the default) keeps every domain on
  /// the classic direct path, bit-for-bit.
  void set_topology(topology::Chain* chain) { chain_ = chain; }
  [[nodiscard]] topology::Chain* topology_chain() const { return chain_; }

  /// Adapters for http::ConnectionPool.
  [[nodiscard]] http::Resolver resolver();
  [[nodiscard]] http::ThinkTimeFn think_fn();
  /// Server-hold factory for the pool: relays chained CDN requests through
  /// the topology chain; empty holds (direct path) otherwise.
  [[nodiscard]] http::ServerHoldFactory hold_fn();

 private:
  struct Host {
    std::unique_ptr<net::NetPath> path;
    // Paths for DNS records 1..N-1 when addresses_per_record > 1 (the
    // primary `path` above is record 0). Same path parameters, independent
    // loss/jitter streams — a different front end behind the same prefix.
    std::vector<std::unique_ptr<net::NetPath>> alt_paths;
    std::unique_ptr<cdn::EdgeServer> edge;      // CDN domains (private mode)
    std::unique_ptr<cdn::OriginServer> origin;  // non-CDN domains (private mode)
    // Servers actually used: the owned ones above, or the shared directory's.
    cdn::EdgeServer* edge_ref = nullptr;
    cdn::OriginServer* origin_ref = nullptr;
    http::OriginInfo info;
  };

  Host& host(const std::string& domain);

  sim::Simulator& sim_;
  const web::DomainUniverse& universe_;
  VantageConfig vantage_;
  util::Rng rng_;
  std::unique_ptr<net::Link> access_up_;    // shared probe NIC, client->net
  std::unique_ptr<net::Link> access_down_;  // shared probe NIC, net->client
  std::unique_ptr<dns::Resolver> resolver_;
  ServerDirectory* servers_ = nullptr;  // non-owning; null => private servers
  topology::Chain* chain_ = nullptr;    // non-owning; null => direct paths
  std::unordered_map<std::string, Host> hosts_;
};

}  // namespace h3cdn::browser
