#include "browser/browser.h"

#include <unordered_map>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/check.h"

namespace h3cdn::browser {

// Chrome-style fetch priorities by resource type (0 = most urgent).
int resource_priority(web::ResourceType type) {
  switch (type) {
    case web::ResourceType::Html: return 0;
    case web::ResourceType::Css: return 1;
    case web::ResourceType::Script: return 1;
    case web::ResourceType::Font: return 2;
    case web::ResourceType::Other: return 3;
    case web::ResourceType::Image: return 4;
    case web::ResourceType::Media: return 5;
  }
  return 3;
}

struct Browser::VisitState {
  const web::WebPage* page = nullptr;
  std::unique_ptr<http::ConnectionPool> pool;
  std::function<void(PageLoadResult)> on_load;
  HarPage har;
  std::size_t expected = 0;
  std::size_t completed = 0;
  bool finished = false;
  // resources discovered by parsing the root document, in document order
  std::vector<const web::Resource*> wave0;
  // wave-1 resources keyed by the id of the wave-0 resource that reveals them
  std::unordered_map<std::uint32_t, std::vector<const web::Resource*>> wave1_triggers;
};

Browser::Browser(sim::Simulator& sim, Environment& env, tls::SessionTicketStore* tickets,
                 BrowserConfig config, util::Rng rng)
    : sim_(sim), env_(env), tickets_(tickets), config_(std::move(config)), rng_(rng),
      engine_(config_.resilience) {}

void Browser::visit(const web::WebPage& page, std::function<void(PageLoadResult)> on_load) {
  H3CDN_EXPECTS(on_load != nullptr);
  obs::ProfileScope profile("browser.visit_setup");
  auto visit = std::make_shared<VisitState>();
  visit->page = &page;
  visit->on_load = std::move(on_load);
  visit->har.site = page.site;
  visit->har.h3_enabled = config_.h3_enabled;
  visit->har.started = sim_.now();
  visit->expected = page.total_requests();

  http::PoolConfig pc;
  pc.h3_enabled = config_.h3_enabled;
  pc.allow_zero_rtt = config_.allow_zero_rtt;
  pc.protocol_hint = config_.protocol_hint;
  pc.h1_max_connections_per_origin = config_.h1_max_connections_per_origin;
  pc.session = config_.session;
  pc.transport = config_.transport;
  pc.think_time = env_.think_fn();
  pc.server_hold = env_.hold_fn();
  pc.connection_trace_factory = config_.connection_trace_factory;
  if (config_.resilience.enabled) pc.resilience = &engine_;
  visit->pool = std::make_unique<http::ConnectionPool>(sim_, pc, env_.resolver(), tickets_,
                                                       rng_.fork(page.site));
  if (config_.pool_trace) visit->pool->set_trace(config_.pool_trace);

  // Partition subresources into discovery waves and bind wave-1 resources to
  // their trigger (deterministic round-robin over wave-0 resources).
  std::vector<const web::Resource*> wave1;
  for (const auto& r : page.resources) {
    (r.discovery_wave == 0 ? visit->wave0 : wave1).push_back(&r);
  }
  if (visit->wave0.empty()) {
    visit->wave0 = std::move(wave1);  // degenerate page: all parser-discovered
    wave1.clear();
  }
  for (std::size_t i = 0; i < wave1.size(); ++i) {
    const web::Resource* trigger = visit->wave0[i % visit->wave0.size()];
    visit->wave1_triggers[trigger->id].push_back(wave1[i]);
  }

  // Fetch the root document; discovery begins when it completes.
  fetch_resource(visit, page.html, /*initiator_id=*/-1);
}

namespace {

// A response is cacheable when its headers advertise it (CDN responses carry
// public/max-age directives; dynamic first-party responses say no-cache).
bool is_cacheable(const web::Resource& resource) {
  for (const auto& [name, value] : resource.response_headers) {
    if (name != "cache-control") continue;
    if (value.find("no-cache") != std::string::npos) return false;
    if (value.find("max-age") != std::string::npos ||
        value.find("public") != std::string::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace

void Browser::fetch_resource(const std::shared_ptr<VisitState>& visit,
                             const web::Resource& resource, std::int64_t initiator_id) {
  // Repeat view: cache hits skip the network entirely.
  if (config_.http_cache_enabled && http_cache_.count(resource.url()) > 0) {
    auto self_visit = visit;
    sim_.schedule_in(usec(200), [this, self_visit, &resource, initiator_id] {
      http::EntryTimings t;
      t.started = sim_.now() - usec(200);
      t.finished = sim_.now();
      t.version = http::HttpVersion::H2;  // nominal; no network involved
      t.reused_connection = true;
      on_entry_done(self_visit, resource, initiator_id, t, /*from_cache=*/true);
    });
    return;
  }

  auto submit = [this, visit, &resource, initiator_id](Duration dns_time) {
    http::Request request;
    request.domain = resource.domain;
    request.path = resource.path;
    request.request_bytes = resource.request_bytes;
    request.response_bytes = resource.size_bytes;
    request.priority = resource_priority(resource.type);
    visit->pool->fetch(request, [this, visit, &resource, initiator_id,
                                 dns_time](const http::EntryTimings& t) {
      http::EntryTimings timings = t;
      timings.dns = dns_time;
      on_entry_done(visit, resource, initiator_id, timings);
    });
  };

  if (!config_.dns_enabled) {
    submit(Duration::zero());
    return;
  }
  const TimePoint resolve_start = sim_.now();
  env_.dns().resolve(resource.domain, [resolve_start, submit = std::move(submit)](TimePoint t) {
    submit(t - resolve_start);
  });
}

void Browser::on_entry_done(const std::shared_ptr<VisitState>& visit,
                            const web::Resource& resource, std::int64_t initiator_id,
                            const http::EntryTimings& timings, bool from_cache) {
  HarEntry entry;
  entry.resource_id = resource.id;
  entry.initiator_id = initiator_id;
  entry.url = resource.url();
  entry.domain = resource.domain;
  entry.type = resource.type;
  entry.response_bytes = resource.size_bytes;
  entry.from_cache = from_cache;
  entry.timings = timings;
  entry.response_headers = resource.response_headers;
  visit->har.entries.push_back(std::move(entry));
  ++visit->completed;
  obs::count("browser.resources_fetched");
  if (from_cache) obs::count("browser.cache_hits");
  if (timings.failed) obs::count("browser.resources_failed");
  if (config_.http_cache_enabled && !from_cache && is_cacheable(resource)) {
    http_cache_.insert(resource.url());
  }

  if (resource.id == visit->page->html.id) {
    // Root document parsed: schedule wave-0 discoveries at parser pace.
    const auto root_id = static_cast<std::int64_t>(visit->page->html.id);
    std::size_t idx = 0;
    for (const web::Resource* rp : visit->wave0) {
      ++idx;
      const Duration at = Duration{config_.parse_delay_per_resource.count() *
                                   static_cast<std::int64_t>(idx)};
      sim_.schedule_in(at,
                       [this, visit, rp, root_id] { fetch_resource(visit, *rp, root_id); });
    }
  }

  // Dependent discoveries revealed by this resource.
  auto it = visit->wave1_triggers.find(resource.id);
  if (it != visit->wave1_triggers.end()) {
    auto dependents = std::move(it->second);
    visit->wave1_triggers.erase(it);
    const auto trigger_id = static_cast<std::int64_t>(resource.id);
    for (const web::Resource* rp : dependents) {
      sim_.schedule_in(config_.wave1_discovery_delay, [this, visit, rp, trigger_id] {
        fetch_resource(visit, *rp, trigger_id);
      });
    }
  }

  maybe_finish(visit);
}

void Browser::maybe_finish(const std::shared_ptr<VisitState>& visit) {
  if (visit->finished || visit->completed < visit->expected) return;
  obs::ProfileScope profile("browser.page_assembly");
  visit->finished = true;
  visit->har.page_load_time = sim_.now() - visit->har.started;
  obs::count("browser.pages_loaded");
  obs::observe_ms("browser.page_load_ms", visit->har.page_load_time);
  const auto& ps = visit->pool->stats();
  visit->har.connections_created = ps.connections_created;
  visit->har.resumed_connections = ps.resumed_connections;
  visit->har.zero_rtt_connections = ps.zero_rtt_connections;
  visit->har.connection_deaths = ps.connection_deaths;
  visit->har.h3_fallbacks = ps.h3_fallbacks;
  visit->har.requests_rescued = ps.requests_rescued;
  visit->har.requests_failed = ps.requests_failed;

  PageLoadResult result;
  result.pool_stats = ps;
  // Terminate all connections (paper §III-B) before handing out the archive.
  visit->pool->close_all();
  result.har = std::move(visit->har);
  visit->on_load(std::move(result));
}

PageLoadResult Browser::visit_and_run(const web::WebPage& page) {
  PageLoadResult out;
  bool done = false;
  visit(page, [&](PageLoadResult r) {
    out = std::move(r);
    done = true;
  });
  sim_.run();
  H3CDN_ENSURES(done);
  return out;
}

}  // namespace h3cdn::browser
