// HarPage -> obs::Waterfall adapter.
//
// The waterfall data model lives in obs/ (no browser dependency); this is
// the one place that knows how to turn a finished page archive into it.
#pragma once

#include "browser/har.h"
#include "obs/waterfall.h"

namespace h3cdn::browser {

/// Builds a per-resource waterfall from a finished page load. Entry start
/// offsets are relative to the page's navigation start, and each entry's
/// `blocked` phase is recomputed as the residual so that
/// dns + blocked + connect + send + wait + receive == the entry's total
/// latency exactly (the HAR-grade phase-sum invariant).
[[nodiscard]] obs::Waterfall make_waterfall(const HarPage& page, const std::string& vantage = "");

}  // namespace h3cdn::browser
