// HAR-equivalent archive: the raw measurement artifact.
//
// The paper's pipeline is Chrome -> HAR file -> analysis. Our pipeline is
// Browser -> HarPage -> analysis. Entries carry the HAR timing phases the
// paper uses (connect/wait/receive, §III-C), the response headers (so the
// LocEdge-substitute classifier works from the archive, not from ground
// truth), and the connection-reuse signal (connect == 0, §VI-C).
#pragma once

#include <string>
#include <vector>

#include "http/types.h"
#include "util/types.h"
#include "web/resource.h"

namespace h3cdn::browser {

struct HarEntry {
  std::uint32_t resource_id = 0;
  // Resource id whose completion revealed this one (the Chrome HAR
  // `_initiator` edge): -1 for the root document, the root's id for
  // parser-discovered wave-0 resources, the trigger's id for wave-1
  // dependents. Critical-path attribution walks these edges.
  std::int64_t initiator_id = -1;
  std::string url;
  std::string domain;
  web::ResourceType type = web::ResourceType::Other;
  std::size_t response_bytes = 0;
  bool from_cache = false;  // served by the browser HTTP cache (repeat view)
  http::EntryTimings timings;
  std::vector<web::Header> response_headers;

  /// The paper's reused-connection predicate: HAR connect time of zero.
  [[nodiscard]] bool is_reused_connection() const {
    return timings.connect == Duration::zero();
  }
};

struct HarPage {
  std::string site;
  bool h3_enabled = false;  // browser protocol mode of this visit
  TimePoint started{0};
  Duration page_load_time{0};  // onLoad: all resources finished (§III-C PLT)
  std::vector<HarEntry> entries;

  // Pool-level connection accounting for this visit.
  std::uint64_t connections_created = 0;
  std::uint64_t resumed_connections = 0;  // ticket-based (Resumed/ZeroRtt)
  std::uint64_t zero_rtt_connections = 0;
  // Fault-recovery accounting (zero on a healthy network; docs/FAULTS.md).
  // Not serialized by to_har_json: the HAR format has no place for them.
  std::uint64_t connection_deaths = 0;
  std::uint64_t h3_fallbacks = 0;
  std::uint64_t requests_rescued = 0;
  std::uint64_t requests_failed = 0;

  [[nodiscard]] std::size_t reused_connection_count() const;

  /// Entries abandoned after exhausting their retry budget.
  [[nodiscard]] std::size_t failed_entry_count() const;

  /// Entries fetched over a given HTTP version.
  [[nodiscard]] std::size_t count_version(http::HttpVersion v) const;
};

/// Serializes a page archive to HAR-flavoured JSON (log/entries layout with
/// the standard timings object), for interoperability and the quickstart.
std::string to_har_json(const HarPage& page);

}  // namespace h3cdn::browser
