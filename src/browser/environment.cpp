#include "browser/environment.h"

#include <algorithm>

#include "topology/chain.h"
#include "util/check.h"

namespace h3cdn::browser {

std::vector<VantageConfig> default_vantage_points() {
  // Three CloudLab sites (§III-B). The scale factors encode geography:
  // Utah/Wisconsin/Clemson see slightly different path lengths to the same
  // anycast edges and origins.
  VantageConfig utah{.name = "utah", .rtt_scale = 1.00};
  VantageConfig wisconsin{.name = "wisconsin", .rtt_scale = 1.12};
  VantageConfig clemson{.name = "clemson", .rtt_scale = 1.25};
  return {utah, wisconsin, clemson};
}

void apply_link_profile(VantageConfig& vantage, const net::LinkProfile& profile) {
  vantage.access_bandwidth_bps = profile.access_bandwidth_bps;
  vantage.access_latency_ms = profile.access_latency_ms;
  vantage.jitter_ms = profile.jitter_ms;
  vantage.rtt_scale *= profile.rtt_scale;
  vantage.baseline_loss_rate = profile.baseline_loss_rate;
  if (profile.fault.gilbert_elliott.enabled) {
    vantage.fault_profile.gilbert_elliott = profile.fault.gilbert_elliott;
  }
  for (const auto& o : profile.fault.outages) vantage.fault_profile.outages.push_back(o);
  for (const auto& s : profile.fault.rtt_spikes) vantage.fault_profile.rtt_spikes.push_back(s);
}

std::vector<VantageConfig> global_vantage_points() {
  auto points = default_vantage_points();
  points.push_back({.name = "frankfurt", .rtt_scale = 2.6});
  points.push_back({.name = "saopaulo", .rtt_scale = 3.4});
  points.push_back({.name = "singapore", .rtt_scale = 4.2});
  return points;
}

Environment::Environment(sim::Simulator& sim, const web::DomainUniverse& universe,
                         VantageConfig vantage, util::Rng rng, ServerDirectory* servers)
    : sim_(sim), universe_(universe), vantage_(std::move(vantage)), rng_(rng),
      servers_(servers) {
  net::LinkConfig access;
  access.latency = from_ms(vantage_.access_latency_ms);
  access.bandwidth_bps = vantage_.access_bandwidth_bps;
  access.loss_rate = 0.0;  // loss is applied per path with paired seeds
  access.jitter_max = Duration::zero();
  access_up_ = std::make_unique<net::Link>(sim_, access, rng_.fork("access-up"));
  access_down_ = std::make_unique<net::Link>(sim_, access, rng_.fork("access-down"));
  resolver_ = std::make_unique<dns::Resolver>(sim_, vantage_.dns, rng_.fork("dns"));
  if (!vantage_.fault_profile.empty()) {
    // Per-direction injectors with independent streams, like NetPath's.
    access_up_->set_fault_profile(vantage_.fault_profile, rng_.fork("fault-access-up"));
    access_down_->set_fault_profile(vantage_.fault_profile, rng_.fork("fault-access-down"));
  }
}

void Environment::add_outage(const net::Outage& outage) {
  if (access_up_->fault_injector() == nullptr) {
    access_up_->set_fault_profile({}, rng_.fork("fault-access-up"));
    access_down_->set_fault_profile({}, rng_.fork("fault-access-down"));
  }
  access_up_->fault_injector()->add_outage(outage);
  access_down_->fault_injector()->add_outage(outage);
}

void Environment::add_rtt_spike(const net::RttSpike& spike) {
  if (access_up_->fault_injector() == nullptr) {
    access_up_->set_fault_profile({}, rng_.fork("fault-access-up"));
    access_down_->set_fault_profile({}, rng_.fork("fault-access-down"));
  }
  access_up_->fault_injector()->add_rtt_spike(spike);
  access_down_->fault_injector()->add_rtt_spike(spike);
}

Environment::Host& Environment::host(const std::string& domain) {
  auto it = hosts_.find(domain);
  if (it != hosts_.end()) return it->second;

  const web::DomainInfo& dinfo = universe_.get(domain);
  const cdn::ProviderTraits& traits = cdn::ProviderRegistry::get(dinfo.provider);
  util::Rng host_rng = rng_.fork(domain);

  net::PathConfig pc;
  const double base_ms = to_ms(traits.edge_rtt_base) +
                         host_rng.uniform(0.0, to_ms(traits.edge_rtt_spread));
  pc.rtt = from_ms(base_ms * vantage_.rtt_scale);
  pc.bandwidth_bps = std::min(vantage_.probe_bandwidth_bps, traits.edge_bandwidth_bps);
  // The injected netem-style loss is applied per path with a seed shared by
  // the paired H2/H3 runs: statistically identical to NIC-level Bernoulli
  // loss, but identical traffic sees identical drops, so paired reductions
  // measure the protocol effect rather than loss-realization noise.
  pc.loss_rate = std::min(1.0, vantage_.baseline_loss_rate + vantage_.loss_rate);
  pc.jitter_max = from_ms(vantage_.jitter_ms);

  Host h;
  h.path = std::make_unique<net::NetPath>(sim_, pc, host_rng.fork("path"));
  // Per-packet jitter IS per-visit noise (the two visits happen at different
  // times in the paper), hence the salt.
  h.path->reseed_jitter(vantage_.server_noise_salt);
  h.path->attach_access(access_up_.get(), access_down_.get());
  if (vantage_.dns.addresses_per_record > 1) {
    // Alternate front ends for DNS failover: identical parameters,
    // independent stochastic streams. The primary-path fault (when any)
    // afflicts only record 0, so health demotion can route around it.
    if (!vantage_.primary_path_fault.empty()) {
      h.path->set_fault_profile(vantage_.primary_path_fault, host_rng.fork("primary-fault"));
    }
    for (std::size_t i = 1; i < vantage_.dns.addresses_per_record; ++i) {
      auto alt = std::make_unique<net::NetPath>(sim_, pc, host_rng.fork("alt-path").fork(i));
      alt->reseed_jitter(vantage_.server_noise_salt);
      alt->attach_access(access_up_.get(), access_down_.get());
      h.alt_paths.push_back(std::move(alt));
    }
  }
  if (servers_ != nullptr) {
    // Shared-farm mode: servers are owned (and seeded) by the directory, so
    // every client environment contends for the same queues and caches.
    h.edge_ref = servers_->edge(domain);
    h.origin_ref = servers_->origin(domain);
  } else {
    util::Rng server_rng = host_rng.fork("server").fork(vantage_.server_noise_salt);
    if (dinfo.is_cdn) {
      h.edge = std::make_unique<cdn::EdgeServer>(traits, server_rng, 65536,
                                                 vantage_.edge_capacity);
    } else {
      h.origin = std::make_unique<cdn::OriginServer>(traits, server_rng);
    }
    h.edge_ref = h.edge.get();
    h.origin_ref = h.origin.get();
  }
  h.info.path = h.path.get();
  if (h.edge_ref != nullptr && h.edge_ref->capacity().enabled) {
    cdn::EdgeServer* edge = h.edge_ref;
    h.info.handshake_admission = [edge](TimePoint now, tls::TransportKind kind,
                                        tls::HandshakeMode mode) {
      return edge->try_admit(now, kind, mode);
    };
    h.info.connection_release = [edge] { edge->release_connection(); };
  }
  h.info.supports_h2 = dinfo.supports_h2;
  h.info.supports_h3 = dinfo.supports_h3;
  h.info.tls_version = dinfo.tls_version;
  // Coalescing requires the shared certificate to cover the hostname AND the
  // resolver to land both names on the same front end; in the wild that
  // holds for roughly two-thirds of a giant provider's hostname pairs
  // ("Respect the ORIGIN!", paper ref [40]). Membership is a stable property
  // of the hostname, identical across the paired H2/H3 runs (pre-salt rng).
  if (vantage_.h2_coalescing_enabled && dinfo.is_cdn && traits.h2_coalescing &&
      host_rng.fork("coalesce").bernoulli(0.65)) {
    h.info.coalesce_key = "h2-coalesce:" + traits.name;
  }

  auto [ins, ok] = hosts_.emplace(domain, std::move(h));
  H3CDN_ASSERT(ok);
  return ins->second;
}

http::OriginInfo Environment::resolve(const std::string& domain) {
  Host& h = host(domain);
  if (chain_ != nullptr && chain_->handles(domain)) {
    if (!chain_->fallen_back()) {
      // Chained: the client dials the first relay over the domain's normal
      // edge path (the relay sits at the POP); the hop protocol is whatever
      // the PathPlan's client-facing token says. The failure hook is what
      // makes fallback work: a typed relay death invalidates the pool's
      // cached OriginInfo, and the re-resolve lands in the branch below.
      http::OriginInfo info = h.info;
      info.supports_h2 = true;
      info.supports_h3 = chain_->client_h3();
      info.connection_failed = [](TimePoint) { /* re-resolve on next dial */ };
      return info;
    }
    // Mid-tier dead: fall back to the direct path (the pristine h.info).
    chain_->note_direct_resolution();
  }
  if (vantage_.dns.addresses_per_record <= 1) return h.info;
  // Multi-record answers: dial the resolver's currently-preferred address
  // and let the pool report connection failures back into the per-record
  // health scores (docs/RESILIENCE.md). The pool re-resolves after every
  // reported failure, so a demoted record is left behind at the next dial.
  http::OriginInfo info = h.info;
  const std::size_t addr = resolver_->preferred_address(domain, sim_.now());
  if (addr > 0 && addr - 1 < h.alt_paths.size()) info.path = h.alt_paths[addr - 1].get();
  info.connection_failed = [this, domain](TimePoint now) {
    resolver_->report_failure(domain, now);
  };
  return info;
}

Duration Environment::think(const http::Request& request, http::HttpVersion version) {
  if (chain_ != nullptr && chain_->active_for(request.domain)) {
    // The relay charges its own processing when it resumes the response
    // (ChainConfig::relay_proc_think / tier_hit_think); the client-facing
    // connection carries no synchronous think of its own.
    return Duration::zero();
  }
  Host& h = host(request.domain);
  const std::string key = request.domain + request.path;
  if (h.edge_ref != nullptr) return h.edge_ref->think_time(key, version, sim_.now());
  return h.origin_ref->think_time(key, version);
}

void Environment::warm_page(const web::WebPage& page) {
  resolver_->prewarm(page.origin_domain);
  for (const auto& r : page.resources) {
    resolver_->prewarm(r.domain);
    if (!r.is_cdn) continue;
    // The direct edge is warmed even in chain mode: it is the fallback
    // server after a mid-tier outage. The chain warms only its terminal
    // tier's edge; the TierCache stays cold by design.
    Host& h = host(r.domain);
    if (h.edge_ref != nullptr) h.edge_ref->warm(r.domain + r.path);
    if (chain_ != nullptr && chain_->handles(r.domain)) {
      chain_->warm(r.domain, r.domain + r.path);
    }
  }
}

void Environment::set_loss_rate(double loss_rate) {
  vantage_.loss_rate = loss_rate;
  const double total = std::min(1.0, vantage_.baseline_loss_rate + loss_rate);
  for (auto& [domain, h] : hosts_) {
    h.path->set_loss_rate(total);
    for (auto& alt : h.alt_paths) alt->set_loss_rate(total);
  }
}

http::Resolver Environment::resolver() {
  return [this](const std::string& domain) { return resolve(domain); };
}

http::ThinkTimeFn Environment::think_fn() {
  return [this](const http::Request& request, http::HttpVersion version) {
    return think(request, version);
  };
}

http::ServerHoldFactory Environment::hold_fn() {
  if (chain_ == nullptr) return nullptr;  // direct runs stay hold-free
  return [this](const http::Request& request,
                http::HttpVersion version) -> transport::ServerHold {
    if (chain_ != nullptr && chain_->active_for(request.domain)) {
      return chain_->make_client_hold(request, version);
    }
    return nullptr;  // non-CDN domain, or fallen back to the direct path
  };
}

}  // namespace h3cdn::browser
