// LocEdge-style CDN resource classifier.
//
// The paper uses LocEdge ("Locating CDN Edge Servers with HTTP Responses",
// SIGCOMM'22 demo) to (a) decide whether a response was served by a CDN and
// (b) attribute it to a provider. LocEdge works from response-header
// fingerprints and hostname patterns; this classifier implements the same
// two signal classes over our synthesized headers, so provider attribution
// in the analysis pipeline is *inferred*, exactly as in the paper, rather
// than read from workload ground truth.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cdn/provider.h"
#include "web/resource.h"

namespace h3cdn::locedge {

struct Classification {
  bool is_cdn = false;
  cdn::ProviderId provider = cdn::ProviderId::None;
  /// Which signal produced the verdict (for diagnostics/tests).
  enum class Evidence { None, HeaderFingerprint, DomainPattern } evidence = Evidence::None;
};

class Classifier {
 public:
  /// Classifies one response from its hostname + response headers.
  [[nodiscard]] Classification classify(const std::string& domain,
                                        const std::vector<web::Header>& headers) const;

  /// Convenience: classify a workload resource.
  [[nodiscard]] Classification classify(const web::Resource& resource) const;

 private:
  [[nodiscard]] std::optional<cdn::ProviderId> from_headers(
      const std::vector<web::Header>& headers) const;
  [[nodiscard]] std::optional<cdn::ProviderId> from_domain(std::string_view domain) const;
};

}  // namespace h3cdn::locedge
