#include "locedge/classifier.h"

#include <algorithm>
#include <cctype>

namespace h3cdn::locedge {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

const std::string* find_header(const std::vector<web::Header>& headers, std::string_view name) {
  for (const auto& [k, v] : headers) {
    if (lower(k) == name) return &v;
  }
  return nullptr;
}

}  // namespace

std::optional<cdn::ProviderId> Classifier::from_headers(
    const std::vector<web::Header>& headers) const {
  using P = cdn::ProviderId;

  // Provider-unique headers first (strongest evidence).
  if (find_header(headers, "cf-ray") != nullptr) return P::Cloudflare;
  if (find_header(headers, "x-amz-cf-pop") != nullptr ||
      find_header(headers, "x-amz-cf-id") != nullptr) {
    return P::Amazon;
  }
  if (find_header(headers, "x-akamai-transformed") != nullptr) return P::Akamai;
  if (find_header(headers, "x-azure-ref") != nullptr) return P::Microsoft;
  if (find_header(headers, "x-qc-pop") != nullptr) return P::QuicCloud;
  if (find_header(headers, "x-served-by") != nullptr) {
    const std::string* v = find_header(headers, "x-served-by");
    if (contains(lower(*v), "cache-")) return P::Fastly;
  }

  // Server / Via banners.
  if (const std::string* server = find_header(headers, "server")) {
    const std::string s = lower(*server);
    if (contains(s, "cloudflare")) return P::Cloudflare;
    if (contains(s, "akamaighost")) return P::Akamai;
    if (contains(s, "gws") || contains(s, "sffe") || contains(s, "esf")) return P::Google;
    if (contains(s, "cdn-cache")) return P::Other;
  }
  if (const std::string* via = find_header(headers, "via")) {
    const std::string v = lower(*via);
    if (contains(v, "google")) return P::Google;
    if (contains(v, "cloudfront")) return P::Amazon;
    if (contains(v, "varnish")) return P::Fastly;
  }
  if (find_header(headers, "x-cdn") != nullptr) return P::Other;
  return std::nullopt;
}

std::optional<cdn::ProviderId> Classifier::from_domain(std::string_view domain) const {
  using P = cdn::ProviderId;
  const std::string d = lower(domain);
  if (ends_with(d, ".gstatic.com") || ends_with(d, ".googleapis.com") ||
      ends_with(d, ".googleusercontent.com") || ends_with(d, ".ytimg.com") ||
      ends_with(d, ".ampproject.org") || ends_with(d, ".googletagmanager.com") ||
      ends_with(d, ".google-analytics.com") || d == "apis.google.com") {
    return P::Google;
  }
  if (ends_with(d, ".cloudflare.com") || ends_with(d, ".cloudflareinsights.com") ||
      ends_with(d, ".cf-static.net") || ends_with(d, ".cf-cache.net") ||
      ends_with(d, ".cf-edge.net") || ends_with(d, ".cf-stream.net") ||
      d == "cdn.jsdelivr.net" || d == "unpkg.com") {
    return P::Cloudflare;
  }
  if (ends_with(d, ".cloudfront.net") || ends_with(d, ".ssl-images-amazon.com") ||
      ends_with(d, ".media-amazon.com") || ends_with(d, ".amazonaws.com")) {
    return P::Amazon;
  }
  if (ends_with(d, ".akamaized.net") || ends_with(d, ".akamaihd.net") ||
      ends_with(d, ".akamai-edge.net") || ends_with(d, ".akamai-cdn.net")) {
    return P::Akamai;
  }
  if (ends_with(d, ".fastly-edge.net") || ends_with(d, ".fastly-cache.net") ||
      ends_with(d, ".fastly-insights.com") || ends_with(d, ".githubassets.com")) {
    return P::Fastly;
  }
  if (ends_with(d, ".aspnetcdn.com") || ends_with(d, ".azureedge.net") ||
      ends_with(d, ".sharepointonline.com") || ends_with(d, ".monitor.azure.com")) {
    return P::Microsoft;
  }
  if (ends_with(d, ".quic.cloud")) return P::QuicCloud;
  if (ends_with(d, ".sstatic.net") || ends_with(d, ".onenet-cdn.com") ||
      ends_with(d, ".bunny-edge.net") || ends_with(d, ".kxcdn.com")) {
    return P::Other;
  }
  return std::nullopt;
}

Classification Classifier::classify(const std::string& domain,
                                    const std::vector<web::Header>& headers) const {
  Classification c;
  if (auto p = from_headers(headers)) {
    c.is_cdn = true;
    c.provider = *p;
    c.evidence = Classification::Evidence::HeaderFingerprint;
    return c;
  }
  if (auto p = from_domain(domain)) {
    c.is_cdn = true;
    c.provider = *p;
    c.evidence = Classification::Evidence::DomainPattern;
    return c;
  }
  return c;
}

Classification Classifier::classify(const web::Resource& resource) const {
  return classify(resource.domain, resource.response_headers);
}

}  // namespace h3cdn::locedge
