// Quartile grouping, as used by Fig. 6a/7: "webpages are categorized into
// four groups based on quartiles of the number of H3-enabled CDN resources,
// namely Low, Medium-Low, Medium-High, and High. Each group has an equal
// number of pages."
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace h3cdn::analysis {

enum class QuartileGroup { Low = 0, MediumLow = 1, MediumHigh = 2, High = 3 };

const char* to_string(QuartileGroup g);

/// Assigns each item to a quartile group by its key value, with equal group
/// sizes (ties broken by original index, like a stable sort by key).
std::vector<QuartileGroup> quartile_groups(const std::vector<double>& keys);

/// Bins values into equal-width integer bins of `width`, returning the bin
/// index for each value: floor(v / width). Negative values map to negative
/// bins. Used for Fig. 7c's reused-connection-difference bins.
std::vector<int> fixed_width_bins(const std::vector<double>& values, double width);

}  // namespace h3cdn::analysis
