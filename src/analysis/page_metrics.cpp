#include "analysis/page_metrics.h"

#include <unordered_map>

namespace h3cdn::analysis {

PageMetrics compute_page_metrics(const browser::HarPage& page,
                                 const locedge::Classifier& classifier) {
  PageMetrics m;
  m.site = page.site;
  m.h3_enabled = page.h3_enabled;
  m.plt_ms = to_ms(page.page_load_time);
  m.total_entries = page.entries.size();
  m.resumed_connections = page.resumed_connections;
  m.connections_created = page.connections_created;

  for (const auto& e : page.entries) {
    const auto cls = classifier.classify(e.domain, e.response_headers);
    const bool is_cdn = cls.is_cdn;
    if (is_cdn) {
      ++m.cdn_entries;
      ++m.provider_counts[cls.provider];
      m.cdn_domains.insert(e.domain);
    }
    switch (e.timings.version) {
      case http::HttpVersion::H2:
        ++m.h2_entries;
        if (is_cdn) ++m.h2_cdn_entries;
        break;
      case http::HttpVersion::H3:
        ++m.h3_entries;
        if (is_cdn) {
          ++m.h3_cdn_entries;
          ++m.provider_h3_counts[cls.provider];
        }
        break;
      case http::HttpVersion::H1_1:
        ++m.other_entries;
        if (is_cdn) ++m.other_cdn_entries;
        break;
    }
    if (e.is_reused_connection()) ++m.reused_connections;
  }
  return m;
}

std::vector<PhaseReduction> entry_phase_reductions(const browser::HarPage& h2_page,
                                                   const browser::HarPage& h3_page) {
  std::unordered_map<std::uint32_t, const browser::HarEntry*> h3_by_id;
  h3_by_id.reserve(h3_page.entries.size());
  for (const auto& e : h3_page.entries) h3_by_id.emplace(e.resource_id, &e);

  std::vector<PhaseReduction> out;
  out.reserve(h2_page.entries.size());
  for (const auto& e2 : h2_page.entries) {
    auto it = h3_by_id.find(e2.resource_id);
    if (it == h3_by_id.end()) continue;
    const auto& e3 = *it->second;
    PhaseReduction r;
    r.connect_ms = to_ms(e2.timings.connect) - to_ms(e3.timings.connect);
    r.connect_valid = e2.timings.connect > Duration::zero() &&
                      e3.timings.connect > Duration::zero();
    r.wait_ms = to_ms(e2.timings.wait) - to_ms(e3.timings.wait);
    r.receive_ms = to_ms(e2.timings.receive) - to_ms(e3.timings.receive);
    out.push_back(r);
  }
  return out;
}

}  // namespace h3cdn::analysis
