// Nonparametric bootstrap confidence intervals for the study's group means.
// The paper reports point estimates only; a reproduction should quantify how
// stable its own group means are (Fig. 6a/8a group means ride on heavy-tailed
// per-page reductions).
#pragma once

#include <vector>

#include "util/rng.h"

namespace h3cdn::analysis {

struct BootstrapCi {
  double mean = 0.0;
  double lo = 0.0;      // lower percentile bound
  double hi = 0.0;      // upper percentile bound
  double confidence = 0.95;
};

/// Percentile bootstrap CI of the sample mean. Deterministic given `rng`.
/// An empty sample yields a zeroed interval; a singleton collapses to the
/// point estimate.
BootstrapCi bootstrap_mean_ci(const std::vector<double>& sample, double confidence,
                              std::size_t resamples, util::Rng rng);

}  // namespace h3cdn::analysis
