#include "analysis/dbscan.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

#include "analysis/vector_math.h"
#include "util/check.h"

namespace h3cdn::analysis {

RegionIndex::RegionIndex(const std::vector<std::vector<double>>& points) : points_(&points) {
  order_.resize(points.size());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
    if (points[a][0] != points[b][0]) return points[a][0] < points[b][0];
    return a < b;  // stable tie-break so the index itself is deterministic
  });
  coord0_.reserve(points.size());
  for (std::size_t idx : order_) coord0_.push_back(points[idx][0]);
}

std::vector<std::size_t> RegionIndex::query(std::size_t center, double eps) const {
  const auto& points = *points_;
  const double x0 = points[center][0];
  const double eps2 = eps * eps;
  const auto lo = std::lower_bound(coord0_.begin(), coord0_.end(), x0 - eps);
  const auto hi = std::upper_bound(coord0_.begin(), coord0_.end(), x0 + eps);
  std::vector<std::size_t> hits;
  for (auto it = lo; it != hi; ++it) {
    const std::size_t idx = order_[static_cast<std::size_t>(it - coord0_.begin())];
    if (squared_distance(points[center], points[idx]) <= eps2) hits.push_back(idx);
  }
  std::sort(hits.begin(), hits.end());
  return hits;
}

double median_k_distance(const std::vector<std::vector<double>>& points, std::size_t min_pts) {
  const std::size_t n = points.size();
  if (n < 2) return 0.0;
  // k-th nearest neighbor with self excluded; clamp so tiny sets still work.
  const std::size_t k = std::min(std::max<std::size_t>(1, min_pts), n - 1);
  std::vector<double> kdist;
  kdist.reserve(n);
  std::vector<double> d2(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t m = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      d2[m++] = squared_distance(points[i], points[j]);
    }
    std::nth_element(d2.begin(), d2.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     d2.begin() + static_cast<std::ptrdiff_t>(m));
    kdist.push_back(std::sqrt(d2[k - 1]));
  }
  std::sort(kdist.begin(), kdist.end());
  const std::size_t mid = kdist.size() / 2;
  if (kdist.size() % 2 == 1) return kdist[mid];
  return 0.5 * (kdist[mid - 1] + kdist[mid]);
}

DbscanResult dbscan(const std::vector<std::vector<double>>& points, DbscanConfig config) {
  H3CDN_EXPECTS(!points.empty());
  for (const auto& p : points) H3CDN_EXPECTS(!p.empty() && p.size() == points[0].size());
  H3CDN_EXPECTS(config.min_pts >= 1);

  const std::size_t n = points.size();
  DbscanResult r;
  r.eps_used = config.eps > 0.0 ? config.eps : median_k_distance(points, config.min_pts);
  r.core.assign(n, false);

  constexpr int kUnvisited = -2;
  constexpr int kNoise = -1;
  r.labels.assign(n, kUnvisited);

  const RegionIndex index(points);
  int next_cluster = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (r.labels[i] != kUnvisited) continue;
    const auto neighbors = index.query(i, r.eps_used);
    if (neighbors.size() < config.min_pts) {
      r.labels[i] = kNoise;  // may be re-claimed as a border point later
      continue;
    }
    r.core[i] = true;
    const int cluster = next_cluster++;
    r.labels[i] = cluster;
    std::deque<std::size_t> frontier(neighbors.begin(), neighbors.end());
    while (!frontier.empty()) {
      const std::size_t q = frontier.front();
      frontier.pop_front();
      if (r.labels[q] == kNoise) r.labels[q] = cluster;  // border point
      if (r.labels[q] != kUnvisited) continue;
      r.labels[q] = cluster;
      const auto q_neighbors = index.query(q, r.eps_used);
      if (q_neighbors.size() >= config.min_pts) {
        r.core[q] = true;
        frontier.insert(frontier.end(), q_neighbors.begin(), q_neighbors.end());
      }
    }
  }
  r.cluster_count = static_cast<std::size_t>(next_cluster);
  return r;
}

}  // namespace h3cdn::analysis
