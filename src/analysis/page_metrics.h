// Per-page metric extraction from HAR archives, with provider attribution
// done by the LocEdge-substitute classifier (as in the paper's pipeline) —
// analysis never reads workload ground truth.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "browser/har.h"
#include "cdn/provider.h"
#include "locedge/classifier.h"

namespace h3cdn::analysis {

struct PageMetrics {
  std::string site;
  bool h3_enabled = false;
  double plt_ms = 0.0;

  std::size_t total_entries = 0;
  std::size_t cdn_entries = 0;
  std::size_t h2_entries = 0;
  std::size_t h3_entries = 0;
  std::size_t other_entries = 0;  // HTTP/1.x
  std::size_t h2_cdn_entries = 0;
  std::size_t h3_cdn_entries = 0;
  std::size_t other_cdn_entries = 0;

  std::size_t reused_connections = 0;   // entries with HAR connect == 0
  std::uint64_t resumed_connections = 0;  // ticket-based connections this visit
  std::uint64_t connections_created = 0;

  std::map<cdn::ProviderId, std::size_t> provider_counts;     // CDN entries
  std::map<cdn::ProviderId, std::size_t> provider_h3_counts;  // fetched via H3
  std::set<std::string> cdn_domains;

  [[nodiscard]] double cdn_fraction() const {
    return total_entries == 0 ? 0.0
                              : static_cast<double>(cdn_entries) /
                                    static_cast<double>(total_entries);
  }
  [[nodiscard]] std::size_t provider_count() const { return provider_counts.size(); }

  /// Distinct providers among the six giants the paper's §VI-D analysis
  /// counts (Amazon, Akamai, Cloudflare, Fastly, Google, Microsoft).
  [[nodiscard]] std::size_t giant_provider_count() const {
    std::size_t n = 0;
    for (auto id : cdn::ProviderRegistry::fig8_providers()) n += provider_counts.count(id);
    return n;
  }
};

PageMetrics compute_page_metrics(const browser::HarPage& page,
                                 const locedge::Classifier& classifier);

/// A paired H2-mode / H3-mode observation of the same page from the same
/// probe; the unit of every X_reduction statistic (§III-C).
struct PagePair {
  PageMetrics h2;
  PageMetrics h3;

  [[nodiscard]] double plt_reduction_ms() const { return h2.plt_ms - h3.plt_ms; }
  /// Fig. 7b's metric: reused connections with H2 minus with H3.
  [[nodiscard]] double reused_connection_diff() const {
    return static_cast<double>(h2.reused_connections) -
           static_cast<double>(h3.reused_connections);
  }
};

/// Per-entry phase reductions (connection/wait/receive), matching entries of
/// the two archives by resource id — the basis of Fig. 6b.
struct PhaseReduction {
  double connect_ms = 0.0;
  double wait_ms = 0.0;
  double receive_ms = 0.0;
  // The connect comparison is only meaningful for entries that initiated a
  // connection in BOTH visits (the same first-request-to-a-host both times);
  // reused entries report connect == 0 by HAR convention in either mode.
  bool connect_valid = false;
};

std::vector<PhaseReduction> entry_phase_reductions(const browser::HarPage& h2_page,
                                                   const browser::HarPage& h3_page);

}  // namespace h3cdn::analysis
