#include "analysis/archetype.h"

#include <algorithm>
#include <map>

#include "analysis/vector_math.h"
#include "util/check.h"
#include "util/rng.h"

namespace h3cdn::analysis {

std::string archetype_name(const std::vector<double>& centroid,
                           const std::vector<double>& population_mean,
                           const std::vector<std::string>& dim_names,
                           double min_deviation) {
  H3CDN_EXPECTS(centroid.size() >= dim_names.size());
  H3CDN_EXPECTS(population_mean.size() >= dim_names.size());
  if (dim_names.empty()) return "archetype";
  std::size_t best_dev = 0;
  std::size_t best_abs = 0;
  for (std::size_t d = 1; d < dim_names.size(); ++d) {
    if (centroid[d] - population_mean[d] > centroid[best_dev] - population_mean[best_dev]) {
      best_dev = d;
    }
    if (centroid[d] > centroid[best_abs]) best_abs = d;
  }
  if (centroid[best_dev] - population_mean[best_dev] >= min_deviation) {
    return dim_names[best_dev] + "-bound";
  }
  return dim_names[best_abs] + "-heavy";
}

namespace {

// Compacts raw labels into ascending 0-based ids (noise stays -1) in order
// of first appearance by *smallest member index*, so ids are canonical.
std::vector<int> canonicalize_labels(const std::vector<int>& raw, std::size_t* cluster_count) {
  std::map<int, int> remap;  // raw id -> canonical id, assigned in scan order
  int next = 0;
  for (int label : raw) {
    if (label < 0) continue;
    if (remap.emplace(label, next).second) ++next;
  }
  std::vector<int> out(raw.size(), -1);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] >= 0) out[i] = remap[raw[i]];
  }
  *cluster_count = static_cast<std::size_t>(next);
  return out;
}

}  // namespace

ArchetypeResult discover_archetypes(const std::vector<std::vector<double>>& features,
                                    const std::vector<std::string>& dim_names,
                                    const ArchetypeConfig& config) {
  H3CDN_EXPECTS(!features.empty());
  for (const auto& row : features) H3CDN_EXPECTS(row.size() == features[0].size());

  ArchetypeResult r;
  std::vector<int> raw(features.size(), 0);
  if (config.algo == ArchetypeAlgo::Dbscan) {
    const DbscanResult d = dbscan(features, config.dbscan);
    raw = d.labels;
    r.eps_used = d.eps_used;
  } else if (features.size() >= 2) {
    const KMeansSweepResult sweep = kmeans_select_k(features, config.k_min, config.k_max,
                                                    config.kmeans, util::Rng(config.seed));
    r.chosen_k = sweep.best_k;
    for (std::size_t i = 0; i < features.size(); ++i) {
      raw[i] = static_cast<int>(sweep.best.assignment[i]);
    }
  }
  r.labels = canonicalize_labels(raw, &r.cluster_count);

  // Silhouette over clustered (non-noise) points only.
  {
    std::vector<std::vector<double>> clustered;
    std::vector<std::size_t> assignment;
    for (std::size_t i = 0; i < features.size(); ++i) {
      if (r.labels[i] < 0) continue;
      clustered.push_back(features[i]);
      assignment.push_back(static_cast<std::size_t>(r.labels[i]));
    }
    r.silhouette = silhouette_score(clustered, assignment);
  }

  const std::vector<double> population_mean = mean_row(features);
  std::map<int, Archetype> by_id;
  for (std::size_t i = 0; i < features.size(); ++i) {
    Archetype& a = by_id[r.labels[i]];
    a.id = r.labels[i];
    a.members.push_back(i);
  }
  for (auto& [id, a] : by_id) {
    std::vector<std::vector<double>> rows;
    rows.reserve(a.members.size());
    for (std::size_t m : a.members) rows.push_back(features[m]);
    a.centroid = mean_row(rows);
    a.name = id < 0 ? "noise" : archetype_name(a.centroid, population_mean, dim_names);
  }
  // Ascending by id with the noise bucket (-1) moved last.
  for (auto& [id, a] : by_id) {
    if (id >= 0) r.archetypes.push_back(std::move(a));
  }
  if (auto it = by_id.find(-1); it != by_id.end()) r.archetypes.push_back(std::move(it->second));
  return r;
}

}  // namespace h3cdn::analysis
