#include "analysis/grouping.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace h3cdn::analysis {

const char* to_string(QuartileGroup g) {
  switch (g) {
    case QuartileGroup::Low: return "Low";
    case QuartileGroup::MediumLow: return "Medium-Low";
    case QuartileGroup::MediumHigh: return "Medium-High";
    case QuartileGroup::High: return "High";
  }
  return "?";
}

std::vector<QuartileGroup> quartile_groups(const std::vector<double>& keys) {
  const std::size_t n = keys.size();
  std::vector<QuartileGroup> out(n, QuartileGroup::Low);
  if (n == 0) return out;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });

  for (std::size_t rank = 0; rank < n; ++rank) {
    const auto g = std::min<std::size_t>(3, rank * 4 / n);
    out[order[rank]] = static_cast<QuartileGroup>(g);
  }
  return out;
}

std::vector<int> fixed_width_bins(const std::vector<double>& values, double width) {
  H3CDN_EXPECTS(width > 0.0);
  std::vector<int> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(static_cast<int>(std::floor(v / width)));
  return out;
}

}  // namespace h3cdn::analysis
