// Lloyd's k-means, as used by the paper's Table III case study: webpages are
// embedded as 58-dimensional binary vectors (which shared CDN domains appear
// on the page) and clustered with k = 2 into high-/low-sharing groups.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/vector_math.h"  // squared_distance shared with DBSCAN
#include "util/rng.h"

namespace h3cdn::analysis {

struct KMeansResult {
  std::vector<std::size_t> assignment;        // point index -> cluster id
  std::vector<std::vector<double>> centroids; // k centroids
  double inertia = 0.0;                       // sum of squared distances
  std::size_t iterations = 0;
  bool converged = false;
};

struct KMeansConfig {
  std::size_t k = 2;
  std::size_t max_iterations = 100;
  std::size_t restarts = 5;  // keep the best-inertia run
};

/// Clusters `points` (all the same dimension). Requires points.size() >= k.
/// k-means++ seeding; deterministic given `rng`.
KMeansResult kmeans(const std::vector<std::vector<double>>& points, KMeansConfig config,
                    util::Rng rng);

/// Mean silhouette coefficient of a clustering: for each point, a = mean
/// distance to its own cluster, b = min over other clusters of the mean
/// distance to that cluster, s = (b - a) / max(a, b). Singleton clusters
/// score 0, as does any clustering with fewer than two populated clusters.
/// Range [-1, 1]; higher is better-separated.
double silhouette_score(const std::vector<std::vector<double>>& points,
                        const std::vector<std::size_t>& assignment);

struct KMeansSweepResult {
  std::size_t best_k = 0;
  KMeansResult best;               // the kmeans run at best_k
  std::vector<std::size_t> ks;     // the k values swept, ascending
  std::vector<double> silhouettes; // silhouette per swept k
  std::vector<double> inertias;    // inertia per swept k (elbow diagnostics)
};

/// Sweeps k in [k_min, k_max] (clamped to points.size()) and keeps the k with
/// the highest silhouette score, preferring the smaller k on ties.
/// Deterministic given `rng`; each k runs on an independent fork.
KMeansSweepResult kmeans_select_k(const std::vector<std::vector<double>>& points,
                                  std::size_t k_min, std::size_t k_max, KMeansConfig base,
                                  util::Rng rng);

}  // namespace h3cdn::analysis
