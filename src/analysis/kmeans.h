// Lloyd's k-means, as used by the paper's Table III case study: webpages are
// embedded as 58-dimensional binary vectors (which shared CDN domains appear
// on the page) and clustered with k = 2 into high-/low-sharing groups.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace h3cdn::analysis {

struct KMeansResult {
  std::vector<std::size_t> assignment;        // point index -> cluster id
  std::vector<std::vector<double>> centroids; // k centroids
  double inertia = 0.0;                       // sum of squared distances
  std::size_t iterations = 0;
  bool converged = false;
};

struct KMeansConfig {
  std::size_t k = 2;
  std::size_t max_iterations = 100;
  std::size_t restarts = 5;  // keep the best-inertia run
};

/// Clusters `points` (all the same dimension). Requires points.size() >= k.
/// k-means++ seeding; deterministic given `rng`.
KMeansResult kmeans(const std::vector<std::vector<double>>& points, KMeansConfig config,
                    util::Rng rng);

/// Squared Euclidean distance (exposed for tests).
double squared_distance(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace h3cdn::analysis
