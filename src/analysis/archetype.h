// Workload-archetype discovery: clusters normalized attribution vectors
// (phase *shares*, optionally extended with QoE ratios) into named regimes
// like "hol_stall-bound" or "tls_hs-bound". Density-based (DBSCAN) by
// default so the number of regimes is discovered, with a silhouette-swept
// k-means++ as the parametric alternative.
//
// This layer is generic over feature rows + dimension names; mapping study
// pages into features (and back) lives in core, which depends on analysis.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/dbscan.h"
#include "analysis/kmeans.h"

namespace h3cdn::analysis {

enum class ArchetypeAlgo { Dbscan, KMeans };

struct ArchetypeConfig {
  ArchetypeAlgo algo = ArchetypeAlgo::Dbscan;
  /// DBSCAN parameters (eps 0 selects the median k-dist radius).
  DbscanConfig dbscan;
  /// k-means silhouette sweep range (clamped to the point count).
  std::size_t k_min = 2;
  std::size_t k_max = 6;
  KMeansConfig kmeans;  // .k is overridden by the sweep
  std::uint64_t seed = 7;
};

struct Archetype {
  int id = -1;                       // -1 is the noise bucket (DBSCAN only)
  std::string name;                  // e.g. "hol_stall-bound", or "noise"
  std::vector<double> centroid;      // mean feature vector of the members
  std::vector<std::size_t> members;  // point indices, ascending
};

struct ArchetypeResult {
  std::vector<int> labels;           // point index -> archetype id (-1 noise)
  std::vector<Archetype> archetypes; // ascending by id; noise bucket last
  std::size_t cluster_count = 0;     // excludes the noise bucket
  double eps_used = 0.0;             // DBSCAN radius actually used
  std::size_t chosen_k = 0;          // k picked by the silhouette sweep
  double silhouette = 0.0;           // silhouette of the final labeling
};

/// Names an archetype by the named dimension where its centroid most exceeds
/// the population mean ("<dim>-bound"). When no dimension stands out by more
/// than `min_deviation` the dominant absolute share names it instead, marked
/// "-heavy" rather than "-bound". Only the first dim_names.size() centroid
/// entries participate (QoE extras are never name-determining).
std::string archetype_name(const std::vector<double>& centroid,
                           const std::vector<double>& population_mean,
                           const std::vector<std::string>& dim_names,
                           double min_deviation = 0.01);

/// Clusters `features` (all rows the same dimension; rows should already be
/// normalized shares) and derives named archetypes. Deterministic.
ArchetypeResult discover_archetypes(const std::vector<std::vector<double>>& features,
                                    const std::vector<std::string>& dim_names,
                                    const ArchetypeConfig& config);

}  // namespace h3cdn::analysis
