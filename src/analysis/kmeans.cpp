#include "analysis/kmeans.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace h3cdn::analysis {

double squared_distance(const std::vector<double>& a, const std::vector<double>& b) {
  H3CDN_EXPECTS(a.size() == b.size());
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += (a[i] - b[i]) * (a[i] - b[i]);
  return d;
}

namespace {

std::vector<std::vector<double>> seed_plusplus(const std::vector<std::vector<double>>& points,
                                               std::size_t k, util::Rng& rng) {
  std::vector<std::vector<double>> centroids;
  centroids.push_back(points[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(points.size()) - 1))]);
  std::vector<double> d2(points.size());
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      for (const auto& c : centroids) best = std::min(best, squared_distance(points[i], c));
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All remaining points coincide with a centroid; duplicate one.
      centroids.push_back(points[0]);
      continue;
    }
    double u = rng.uniform() * total;
    std::size_t pick = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      u -= d2[i];
      if (u <= 0.0) {
        pick = i;
        break;
      }
    }
    centroids.push_back(points[pick]);
  }
  return centroids;
}

KMeansResult run_once(const std::vector<std::vector<double>>& points, const KMeansConfig& config,
                      util::Rng& rng) {
  const std::size_t n = points.size();
  const std::size_t dim = points[0].size();
  KMeansResult r;
  r.centroids = seed_plusplus(points, config.k, rng);
  r.assignment.assign(n, 0);

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < config.k; ++c) {
        const double d = squared_distance(points[i], r.centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (r.assignment[i] != best_c) {
        r.assignment[i] = best_c;
        changed = true;
      }
    }
    // Recompute centroids; empty clusters keep their previous position.
    std::vector<std::vector<double>> sums(config.k, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(config.k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      ++counts[r.assignment[i]];
      for (std::size_t d = 0; d < dim; ++d) sums[r.assignment[i]][d] += points[i][d];
    }
    for (std::size_t c = 0; c < config.k; ++c) {
      if (counts[c] == 0) continue;
      for (std::size_t d = 0; d < dim; ++d) {
        r.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
    r.iterations = iter + 1;
    if (!changed) {
      r.converged = true;
      break;
    }
  }

  r.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    r.inertia += squared_distance(points[i], r.centroids[r.assignment[i]]);
  }
  return r;
}

}  // namespace

KMeansResult kmeans(const std::vector<std::vector<double>>& points, KMeansConfig config,
                    util::Rng rng) {
  H3CDN_EXPECTS(config.k >= 1);
  H3CDN_EXPECTS(points.size() >= config.k);
  for (const auto& p : points) H3CDN_EXPECTS(p.size() == points[0].size());

  KMeansResult best;
  best.inertia = std::numeric_limits<double>::max();
  for (std::size_t restart = 0; restart < std::max<std::size_t>(1, config.restarts); ++restart) {
    util::Rng run_rng = rng.fork(restart);
    KMeansResult r = run_once(points, config, run_rng);
    if (r.inertia < best.inertia) best = std::move(r);
  }
  return best;
}

}  // namespace h3cdn::analysis
