#include "analysis/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace h3cdn::analysis {

namespace {

std::vector<std::vector<double>> seed_plusplus(const std::vector<std::vector<double>>& points,
                                               std::size_t k, util::Rng& rng) {
  std::vector<std::vector<double>> centroids;
  centroids.push_back(points[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(points.size()) - 1))]);
  std::vector<double> d2(points.size());
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      for (const auto& c : centroids) best = std::min(best, squared_distance(points[i], c));
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All remaining points coincide with a centroid; duplicate one.
      centroids.push_back(points[0]);
      continue;
    }
    double u = rng.uniform() * total;
    std::size_t pick = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      u -= d2[i];
      if (u <= 0.0) {
        pick = i;
        break;
      }
    }
    centroids.push_back(points[pick]);
  }
  return centroids;
}

KMeansResult run_once(const std::vector<std::vector<double>>& points, const KMeansConfig& config,
                      util::Rng& rng) {
  const std::size_t n = points.size();
  const std::size_t dim = points[0].size();
  KMeansResult r;
  r.centroids = seed_plusplus(points, config.k, rng);
  r.assignment.assign(n, 0);

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < config.k; ++c) {
        const double d = squared_distance(points[i], r.centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (r.assignment[i] != best_c) {
        r.assignment[i] = best_c;
        changed = true;
      }
    }
    // Recompute centroids; empty clusters keep their previous position.
    std::vector<std::vector<double>> sums(config.k, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(config.k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      ++counts[r.assignment[i]];
      for (std::size_t d = 0; d < dim; ++d) sums[r.assignment[i]][d] += points[i][d];
    }
    for (std::size_t c = 0; c < config.k; ++c) {
      if (counts[c] == 0) continue;
      for (std::size_t d = 0; d < dim; ++d) {
        r.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
    r.iterations = iter + 1;
    if (!changed) {
      r.converged = true;
      break;
    }
  }

  r.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    r.inertia += squared_distance(points[i], r.centroids[r.assignment[i]]);
  }
  return r;
}

}  // namespace

KMeansResult kmeans(const std::vector<std::vector<double>>& points, KMeansConfig config,
                    util::Rng rng) {
  H3CDN_EXPECTS(config.k >= 1);
  H3CDN_EXPECTS(points.size() >= config.k);
  for (const auto& p : points) H3CDN_EXPECTS(p.size() == points[0].size());

  KMeansResult best;
  best.inertia = std::numeric_limits<double>::max();
  for (std::size_t restart = 0; restart < std::max<std::size_t>(1, config.restarts); ++restart) {
    util::Rng run_rng = rng.fork(restart);
    KMeansResult r = run_once(points, config, run_rng);
    if (r.inertia < best.inertia) best = std::move(r);
  }
  return best;
}

double silhouette_score(const std::vector<std::vector<double>>& points,
                        const std::vector<std::size_t>& assignment) {
  H3CDN_EXPECTS(points.size() == assignment.size());
  const std::size_t n = points.size();
  if (n == 0) return 0.0;
  std::size_t k = 0;
  for (std::size_t c : assignment) k = std::max(k, c + 1);
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t c : assignment) ++counts[c];
  std::size_t populated = 0;
  for (std::size_t c : counts)
    if (c > 0) ++populated;
  if (populated < 2) return 0.0;

  double total = 0.0;
  std::vector<double> mean_to(k);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t own = assignment[i];
    if (counts[own] <= 1) continue;  // singleton scores 0
    std::fill(mean_to.begin(), mean_to.end(), 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      mean_to[assignment[j]] += euclidean_distance(points[i], points[j]);
    }
    const double a = mean_to[own] / static_cast<double>(counts[own] - 1);
    double b = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < k; ++c) {
      if (c == own || counts[c] == 0) continue;
      b = std::min(b, mean_to[c] / static_cast<double>(counts[c]));
    }
    const double denom = std::max(a, b);
    if (denom > 0.0) total += (b - a) / denom;
  }
  return total / static_cast<double>(n);
}

KMeansSweepResult kmeans_select_k(const std::vector<std::vector<double>>& points,
                                  std::size_t k_min, std::size_t k_max, KMeansConfig base,
                                  util::Rng rng) {
  H3CDN_EXPECTS(!points.empty());
  H3CDN_EXPECTS(k_min >= 1 && k_min <= k_max);
  k_max = std::min(k_max, points.size());
  k_min = std::min(k_min, k_max);

  KMeansSweepResult sweep;
  double best_silhouette = -std::numeric_limits<double>::max();
  for (std::size_t k = k_min; k <= k_max; ++k) {
    KMeansConfig config = base;
    config.k = k;
    KMeansResult r = kmeans(points, config, rng.fork(k));
    const double s = silhouette_score(points, r.assignment);
    sweep.ks.push_back(k);
    sweep.silhouettes.push_back(s);
    sweep.inertias.push_back(r.inertia);
    if (s > best_silhouette) {  // strict '>' prefers the smaller k on ties
      best_silhouette = s;
      sweep.best_k = k;
      sweep.best = std::move(r);
    }
  }
  return sweep;
}

}  // namespace h3cdn::analysis
