#include "analysis/bootstrap.h"

#include <algorithm>

#include "util/check.h"
#include "util/stats.h"

namespace h3cdn::analysis {

BootstrapCi bootstrap_mean_ci(const std::vector<double>& sample, double confidence,
                              std::size_t resamples, util::Rng rng) {
  H3CDN_EXPECTS(confidence > 0.0 && confidence < 1.0);
  H3CDN_EXPECTS(resamples >= 10);
  BootstrapCi ci;
  ci.confidence = confidence;
  if (sample.empty()) return ci;
  ci.mean = util::mean(sample);
  if (sample.size() == 1) {
    ci.lo = ci.hi = ci.mean;
    return ci;
  }

  std::vector<double> means;
  means.reserve(resamples);
  const auto n = static_cast<std::int64_t>(sample.size());
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      sum += sample[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
    }
    means.push_back(sum / static_cast<double>(n));
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - confidence) / 2.0;
  ci.lo = util::quantile_sorted(means, alpha);
  ci.hi = util::quantile_sorted(means, 1.0 - alpha);
  return ci;
}

}  // namespace h3cdn::analysis
