// Density-based clustering (DBSCAN) over small/medium point sets, used by the
// archetype-discovery pass to find workload regimes without fixing k ahead of
// time. The region query is indexed: points are sorted by their first
// coordinate, a binary search narrows each epsilon-ball lookup to the
// [x0 - eps, x0 + eps] window, and only that window is distance-filtered.
//
// Determinism: points are visited in ascending index order and cluster
// expansion is breadth-first over neighbor lists that are themselves sorted
// by point index. A border point reachable from several clusters therefore
// always joins the cluster that reaches it first in this canonical order.
#pragma once

#include <cstddef>
#include <vector>

namespace h3cdn::analysis {

struct DbscanConfig {
  /// Epsilon-ball radius (Euclidean). 0 selects a radius automatically from
  /// the data: the median distance-to-min_pts-th-nearest-neighbor ("k-dist"
  /// heuristic), so dense share-vector clouds still form clusters.
  double eps = 0.0;
  /// Minimum neighborhood size (including the point itself) for a core point.
  std::size_t min_pts = 4;
};

struct DbscanResult {
  /// point index -> cluster id (0-based, in order of discovery) or -1 = noise.
  std::vector<int> labels;
  std::size_t cluster_count = 0;
  /// Per-point core flag (|N_eps(p)| >= min_pts), exposed for tests.
  std::vector<bool> core;
  /// The radius actually used (== config.eps unless auto-selected).
  double eps_used = 0.0;
};

/// Sorted-coordinate index answering epsilon-ball queries without a full scan.
class RegionIndex {
 public:
  explicit RegionIndex(const std::vector<std::vector<double>>& points);

  /// All point indices within Euclidean distance `eps` of `points[center]`
  /// (including `center` itself), sorted ascending by point index.
  std::vector<std::size_t> query(std::size_t center, double eps) const;

 private:
  const std::vector<std::vector<double>>* points_;
  std::vector<std::size_t> order_;  // point indices sorted by coordinate 0
  std::vector<double> coord0_;      // first coordinate, in `order_` order
};

/// Clusters `points` (all the same dimension, at least one point).
/// Deterministic: identical input and config yield identical labels.
DbscanResult dbscan(const std::vector<std::vector<double>>& points, DbscanConfig config);

/// The auto-eps heuristic used when config.eps == 0: median over points of
/// the distance to the min_pts-th nearest neighbor (self excluded). Exposed
/// for tests and for reporting the chosen radius.
double median_k_distance(const std::vector<std::vector<double>>& points, std::size_t min_pts);

}  // namespace h3cdn::analysis
