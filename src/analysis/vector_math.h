// Shared vector math for the clustering passes (k-means, DBSCAN, archetype
// discovery). Kept dependency-free so any analysis component can use it.
#pragma once

#include <cstddef>
#include <vector>

namespace h3cdn::analysis {

/// Squared Euclidean distance. Requires a.size() == b.size().
double squared_distance(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean distance.
double euclidean_distance(const std::vector<double>& a, const std::vector<double>& b);

/// Normalizes each row to unit L1 mass (row / sum(row)), turning additive
/// phase vectors into scale-free *shares*. Rows whose sum is <= 0 are left
/// untouched (an all-zero attribution carries no shape information).
/// All rows must have the same dimension.
std::vector<std::vector<double>> normalize_rows(const std::vector<std::vector<double>>& rows);

/// Element-wise mean of `rows` (all the same dimension). Empty input yields
/// an empty vector.
std::vector<double> mean_row(const std::vector<std::vector<double>>& rows);

}  // namespace h3cdn::analysis
