#include "analysis/vector_math.h"

#include <cmath>

#include "util/check.h"

namespace h3cdn::analysis {

double squared_distance(const std::vector<double>& a, const std::vector<double>& b) {
  H3CDN_EXPECTS(a.size() == b.size());
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += (a[i] - b[i]) * (a[i] - b[i]);
  return d;
}

double euclidean_distance(const std::vector<double>& a, const std::vector<double>& b) {
  return std::sqrt(squared_distance(a, b));
}

std::vector<std::vector<double>> normalize_rows(const std::vector<std::vector<double>>& rows) {
  std::vector<std::vector<double>> out = rows;
  for (auto& row : out) {
    H3CDN_EXPECTS(row.size() == out[0].size());
    double sum = 0.0;
    for (double v : row) sum += v;
    if (sum <= 0.0) continue;
    for (double& v : row) v /= sum;
  }
  return out;
}

std::vector<double> mean_row(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  std::vector<double> mean(rows[0].size(), 0.0);
  for (const auto& row : rows) {
    H3CDN_EXPECTS(row.size() == mean.size());
    for (std::size_t d = 0; d < mean.size(); ++d) mean[d] += row[d];
  }
  for (double& v : mean) v /= static_cast<double>(rows.size());
  return mean;
}

}  // namespace h3cdn::analysis
