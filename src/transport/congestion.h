// Window-based congestion control.
//
// Both simulated transports use the same controller so that the H2-vs-H3
// comparison isolates the paper's variables (handshake RTTs and head-of-line
// blocking) rather than congestion-control differences — the paper itself
// notes (§II-C, citing Yu & Benson) that production CC choices vary; our
// ablation bench flips the algorithm to quantify that.
#pragma once

#include <cstddef>

#include "util/types.h"

namespace h3cdn::transport {

enum class CcAlgorithm { NewReno, Cubic };

struct CcConfig {
  CcAlgorithm algorithm = CcAlgorithm::NewReno;
  std::size_t initial_cwnd = 10;   // packets (RFC 6928 IW10)
  std::size_t min_cwnd = 2;        // packets
  std::size_t max_cwnd = 4096;     // packets; caps simulator memory
};

/// Packet-granularity congestion window (NewReno or a simplified CUBIC).
class CongestionController {
 public:
  explicit CongestionController(CcConfig config = {});

  /// One packet newly acknowledged.
  void on_ack(TimePoint now);

  /// A packet sent at `sent_time` was declared lost. Window reduction happens
  /// at most once per round trip ("recovery episode"), per NewReno.
  void on_loss(TimePoint sent_time, TimePoint now);

  /// Retransmission timeout: collapse to minimum window, re-enter slow start.
  void on_rto(TimePoint now);

  /// Current window, in packets.
  [[nodiscard]] std::size_t cwnd() const;

  [[nodiscard]] bool in_slow_start() const { return cwnd_ < ssthresh_; }
  [[nodiscard]] std::size_t loss_episodes() const { return loss_episodes_; }

 private:
  void reduce(TimePoint now, double factor);

  CcConfig config_;
  double cwnd_;                    // fractional packets for CA increments
  double ssthresh_;
  TimePoint recovery_start_{-1};   // packets sent before this don't re-reduce
  std::size_t loss_episodes_ = 0;
  // CUBIC state
  double w_max_ = 0.0;
  TimePoint epoch_start_{-1};
};

}  // namespace h3cdn::transport
