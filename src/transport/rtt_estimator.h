// Smoothed RTT estimation and retransmission-timeout computation following
// RFC 6298 (TCP) — which RFC 9002 (QUIC) also adopts nearly verbatim, so one
// estimator serves both transports.
#pragma once

#include "util/types.h"

namespace h3cdn::transport {

class RttEstimator {
 public:
  /// `initial_rto` is used until the first sample arrives; pick it from the
  /// configured path RTT rather than RFC 6298's 1 s to avoid absurd first-loss
  /// penalties on short simulated paths. `extra` is an additive term applied
  /// after a sample exists — QUIC's PTO adds max_ack_delay (RFC 9002 §6.2.1),
  /// which is what keeps its low floor from firing spuriously under queueing.
  explicit RttEstimator(Duration initial_rto, Duration min_rto = msec(50),
                        Duration max_rto = sec(10), Duration extra = Duration::zero());

  /// Feeds one RTT measurement (ack receipt minus send time).
  void sample(Duration rtt);

  /// Current retransmission timeout including exponential backoff.
  [[nodiscard]] Duration rto() const;

  /// Smoothed RTT (initial_rto/2 before any sample).
  [[nodiscard]] Duration srtt() const;

  [[nodiscard]] bool has_sample() const { return has_sample_; }

  /// Doubles the timeout (called on each RTO expiry).
  void backoff();

  /// Resets the backoff multiplier (called when an ack arrives).
  void reset_backoff();

 private:
  Duration initial_rto_;
  Duration min_rto_;
  Duration max_rto_;
  Duration extra_;
  Duration srtt_{0};
  Duration rttvar_{0};
  int backoff_exp_ = 0;
  bool has_sample_ = false;
};

}  // namespace h3cdn::transport
