// Simulated secure transport connection (TCP+TLS for HTTP/2, QUIC for
// HTTP/3) carrying multiplexed request/response streams over a NetPath.
//
// One Connection object simulates *both* endpoints: the client half (request
// sending, response reassembly, timing capture) and the server half (request
// reassembly, think time, response sending). This avoids a distributed
// split-endpoint design while still putting every byte through the lossy,
// bandwidth-limited links.
//
// The two transport kinds share everything except the properties the paper
// studies:
//   * handshake round trips      (tls::handshake_rtts: 2-3 RTT vs 1/0 RTT)
//   * delivery ordering          (TCP: connection-level byte order => a lost
//     packet blocks ALL later data = head-of-line blocking; QUIC: per-stream
//     order => a lost packet blocks only its own stream)
// Loss detection (packet threshold + RTO) and congestion control are shared
// so that measured differences are attributable to the mechanisms above.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/path.h"
#include "sim/simulator.h"
#include "tls/handshake.h"
#include "tls/ticket_store.h"
#include "trace/trace.h"
#include "transport/congestion.h"
#include "transport/rtt_estimator.h"
#include "transport/server_hold.h"
#include "util/rng.h"
#include "util/types.h"

namespace h3cdn::transport {

using StreamId = std::uint64_t;

/// Terminal failure reason of a connection (see docs/FAULTS.md §2). A dead
/// connection has closed itself, told its owner via the on_dead callback, and
/// will never complete its remaining streams.
enum class ConnectionError {
  None,
  HandshakeTimeout,  // handshake retransmissions exhausted
  Blackhole,         // consecutive RTOs with no ACK on a ready connection
  Refused,           // server admission refused the handshake (edge at capacity)
  Killed,            // scripted mid-transfer kill (chaos harness, docs/RESILIENCE.md)
};

const char* to_string(ConnectionError e);

struct TransportConfig {
  // Max payload bytes per packet. Equal by default: the congestion window
  // is counted in packets, so unequal MSS would act as a hidden throughput
  // bias; the real wire-efficiency gap lives in the overhead constants.
  std::size_t mss_tcp = 1350;
  std::size_t mss_quic = 1350;
  // Per-packet wire overhead (IP + transport + record/AEAD framing).
  std::size_t overhead_tcp = 60;
  std::size_t overhead_quic = 62;
  std::size_t ack_bytes = 70;
  std::size_t handshake_client_packet_bytes = 120;
  std::size_t handshake_small_flight_bytes = 80;

  CcConfig cc;
  // Loss-recovery floors differ by transport and this asymmetry is real:
  // Linux TCP clamps RTO at 200 ms (RTO_MIN), while QUIC's PTO has only a
  // millisecond-granularity floor (RFC 9002 kGranularity + max_ack_delay).
  // Tail losses therefore stall a TCP connection — and, via head-of-line
  // blocking, every H2 stream on it — far longer than a QUIC stream.
  Duration min_rto_tcp = msec(200);
  Duration min_rto_quic = msec(30);
  Duration pto_ack_delay_quic = msec(25);  // RFC 9002 max_ack_delay in the PTO
  Duration max_rto = sec(10);
  // Packets are declared lost when `reorder_threshold` later packets have
  // been acknowledged (RFC 9002 kPacketThreshold = 3).
  std::uint64_t reorder_threshold = 3;

  // 0 => derived as max(2 * path RTT, 100ms); doubles per retry.
  Duration handshake_timeout = Duration::zero();
  // Handshake retransmissions before giving up with
  // ConnectionError::HandshakeTimeout. With the doubling timer and the 250 ms
  // floor, 5 retries fire at ~0.25/0.75/1.75/3.75/7.75 s and the connection
  // dies at ~15.75 s — the regime of kernel SYN-retry budgets and Chrome's
  // connection timeout. <= 0 disables the cap (retry forever).
  int max_handshake_retries = 5;
  // Deadness detector for established connections: this many consecutive
  // RTO/PTO fires with no intervening ACK (either direction) means the path
  // is blackholed => ConnectionError::Blackhole. The exponential RTO backoff
  // makes this a bounded wall-clock budget (~2 s for QUIC's 30 ms floor,
  // ~13 s for TCP's 200 ms floor on short paths). <= 0 disables.
  int blackhole_rto_threshold = 6;

  // Stream scheduling. Mature H2 stacks honour the browser's fine-grained
  // priority tree (render-critical CSS/JS before images); 2022-era H3 stacks
  // implemented at best the coarse RFC 9218 urgency buckets — one reason
  // Cloudflare measured H3 "1-4% worse in PLT" (paper Table I). The pool
  // sets these per protocol. `priority_coarseness` divides the priority
  // value into buckets (1 = full fidelity, 3 = coarse urgency).
  bool respect_priorities = true;
  int priority_coarseness = 1;

  // Flow control (RFC 9000 §4; H2's WINDOW_UPDATE works the same way at
  // stream and connection scope). Senders never have more unacknowledged
  // *new* payload outstanding than the advertised windows; receivers grant
  // more credit as in-order data is consumed (half-window refresh). The
  // defaults mirror Chrome's and never bind in the study workloads; tests
  // shrink them to exercise the mechanism.
  std::size_t initial_stream_window = 6 * 1024 * 1024;
  std::size_t initial_connection_window = 15 * 1024 * 1024;

  // Domain this connection is to; carried into issued session tickets.
  std::string domain;

  // Server-capacity admission (see cdn::EdgeCapacityConfig). Consulted once
  // when the certificate-bearing handshake flight reaches the server: a
  // Duration admits the connection and adds accept-queue wait + handshake
  // CPU to the server's processing time; nullopt refuses it (the server
  // sends a small refusal flight and the client dies with
  // ConnectionError::Refused). Unset => always admitted for free.
  std::function<std::optional<Duration>(TimePoint, tls::TransportKind, tls::HandshakeMode)>
      handshake_admission;
  // Fires exactly once when an admitted connection closes, returning its
  // server concurrency slot.
  std::function<void()> connection_release;

  // Chaos fault (docs/RESILIENCE.md): when > 0, the connection dies with
  // ConnectionError::Killed as soon as its cumulative in-order-delivered
  // response payload crosses this byte offset — the scripted "connection cut
  // at byte N" scenario that exercises Range-based resumption. Fires at most
  // once per connection; 0 disables.
  std::size_t kill_response_at_bytes = 0;
};

/// Aggregate connection statistics for analysis and tests.
struct ConnectionStats {
  tls::HandshakeMode mode = tls::HandshakeMode::Fresh;
  TimePoint connect_start{-1};
  TimePoint ready_at{-1};
  Duration connect_time{-1};  // handshake duration; ~0 for 0-RTT
  int handshake_retries = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_declared_lost = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t rto_fires = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t bytes_sent = 0;  // payload bytes incl. retransmissions
  std::uint64_t streams_opened = 0;
  std::uint64_t flow_blocked_events = 0;  // sender stalled on a flow-control window
  std::uint64_t window_updates_sent = 0;
  // Response-direction delivery stalls (StreamStallSpan events), summed over
  // all streams. hol = blocked behind ANOTHER stream's gap (only possible on
  // TCP's connection-wide ordering); retx_wait = blocked on the stream's own
  // lost packet (both transports).
  Duration hol_stall_total{0};
  Duration retx_wait_total{0};
  std::uint64_t stall_spans = 0;
  // Connection-level flow-control starvation (FlowControlStallSpan events):
  // intervals where a direction had data + cwnd but no MAX_DATA credit.
  Duration flow_control_stall_total{0};
  std::uint64_t flow_control_stalls = 0;
  ConnectionError error = ConnectionError::None;  // set when the connection dies
};

/// Cumulative response-direction stall time of one stream, split by cause.
struct StreamStallTotals {
  Duration hol_stall{0};   // blocked behind another stream's gap (TCP HoL)
  Duration retx_wait{0};   // blocked on the stream's own retransmission
};

/// Per-fetch observer callbacks. All fire at client-side simulated times.
struct FetchCallbacks {
  std::function<void(TimePoint)> on_request_sent;  // last request byte written
  std::function<void(TimePoint)> on_first_byte;    // first in-order response byte
  std::function<void(TimePoint)> on_complete;      // response fully delivered
  // Server-side response gate (transport/server_hold.h). When set, the full
  // request arriving at the server invokes the hold instead of starting the
  // think timer; the hold's resume() adds its extra think on top of the
  // stream's server_think. Unset => the classic synchronous path.
  ServerHold on_server_request;
};

class Connection : public std::enable_shared_from_this<Connection> {
 public:
  /// Creates a connection. `mode` is decided by the caller (browser) from its
  /// SessionTicketStore *before* dialing, mirroring how a real client picks
  /// resumption based on cached tickets.
  static std::shared_ptr<Connection> create(sim::Simulator& sim, net::NetPath& path,
                                            tls::TransportKind kind, tls::TlsVersion version,
                                            tls::HandshakeMode mode, util::Rng rng,
                                            TransportConfig config = {});

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Starts the handshake; `on_ready` fires when application data may flow.
  /// Must be called exactly once.
  void connect(std::function<void(TimePoint)> on_ready);

  /// Queues a request/response exchange on a fresh stream. `server_think` is
  /// the server-side processing time between the full request arriving and
  /// the first response byte being written. Legal before ready (data flushes
  /// once the handshake completes — and immediately for 0-RTT). `priority`
  /// orders response scheduling when respect_priorities is on (0 = most
  /// urgent; ties round-robin).
  StreamId fetch(std::size_t request_bytes, std::size_t response_bytes, Duration server_think,
                 FetchCallbacks callbacks, int priority = 3);

  /// Installs a sink receiving the session ticket the server issues once the
  /// handshake completes (wired to the browser's SessionTicketStore).
  void set_ticket_sink(std::function<void(tls::SessionTicket)> sink);

  /// Attaches a qlog-style event trace (see trace/trace.h). Pass nullptr to
  /// detach. No-cost when unset.
  void set_trace(std::shared_ptr<trace::ConnectionTrace> trace);

  /// Installs the death notification: fires at most once, after the
  /// connection has closed itself on a terminal error (handshake retries
  /// exhausted or blackhole detected). The owning session evacuates its
  /// streams from here.
  void set_on_dead(std::function<void(ConnectionError, TimePoint)> on_dead);

  /// Stops all timers and ignores any in-flight events. Idempotent.
  void close();

  [[nodiscard]] bool ready() const { return ready_; }
  [[nodiscard]] bool closed() const { return closed_; }
  [[nodiscard]] ConnectionError error() const { return stats_.error; }
  [[nodiscard]] bool dead() const { return stats_.error != ConnectionError::None; }
  [[nodiscard]] tls::TransportKind kind() const { return kind_; }
  [[nodiscard]] tls::TlsVersion tls_version() const { return version_; }
  [[nodiscard]] tls::HandshakeMode handshake_mode() const { return mode_; }
  [[nodiscard]] const ConnectionStats& stats() const { return stats_; }
  [[nodiscard]] const std::string& domain() const { return config_.domain; }
  [[nodiscard]] std::size_t active_streams() const { return active_stream_count_; }
  [[nodiscard]] std::size_t mss() const;

  /// Cumulative response-direction stall time for one stream (zeros for
  /// unknown ids). Stream state persists past completion, so this is valid
  /// for post-hoc critical-path attribution (obs/critical_path.h).
  [[nodiscard]] StreamStallTotals stall_totals(StreamId sid) const;

  /// In-order response payload bytes delivered to the client for one stream
  /// (0 for unknown ids). Stream state persists past death, so a session can
  /// read this AFTER the connection died to compute an HTTP Range resume
  /// offset for the orphaned request (src/resilience/, docs/RESILIENCE.md).
  [[nodiscard]] std::size_t stream_bytes_received(StreamId sid) const;

  /// The annotation attached by a ServerHold's resume() (nullptr for unknown
  /// ids or un-held streams). Stream state persists past completion, so the
  /// owning session reads this at finalize time — the relay chain delivers
  /// per-hop upstream timings through it (src/topology/).
  [[nodiscard]] std::shared_ptr<void> stream_annotation(StreamId sid) const;

 private:
  Connection(sim::Simulator& sim, net::NetPath& path, tls::TransportKind kind,
             tls::TlsVersion version, tls::HandshakeMode mode, util::Rng rng,
             TransportConfig config);

  enum class Dir : std::size_t { Up = 0, Down = 1 };  // Up: client->server

  struct Chunk {
    StreamId stream = 0;
    std::size_t stream_offset = 0;
    std::size_t len = 0;
    std::size_t conn_offset = 0;  // TCP byte-stream position (dir-local)
  };

  struct SentPacket {
    Chunk chunk;
    TimePoint sent{0};
    bool is_retx = false;
  };

  struct ReceivedKeyLess {
    bool operator()(const std::pair<StreamId, std::size_t>& a,
                    const std::pair<StreamId, std::size_t>& b) const {
      return a < b;
    }
  };

  struct DirState {
    CongestionController cc;
    RttEstimator rtt;
    std::map<std::uint64_t, SentPacket> in_flight;  // by packet number
    std::deque<Chunk> retx_queue;
    // Streams with unsent data, bucketed by priority (respect_priorities) or
    // all in bucket 0 (round-robin). FIFO rotation within a bucket.
    std::map<int, std::deque<StreamId>> rr;
    std::uint64_t next_packet_num = 0;
    std::uint64_t largest_acked = 0;
    bool any_acked = false;
    std::size_t conn_bytes_assigned = 0;  // TCP sequence space allocator
    sim::EventId rto_timer = 0;
    // Flow control — sender view (limits raised by receiver grants):
    std::size_t conn_flow_limit = 0;   // set from config at construction
    // Flow control — receiver view:
    std::size_t conn_delivered = 0;    // in-order payload handed to the app
    std::size_t conn_granted = 0;      // credit advertised so far
    // Receiver side (the opposite endpoint) for this direction:
    std::size_t recv_next_conn = 0;               // TCP cumulative offset
    std::map<std::size_t, Chunk> conn_ooo;        // TCP out-of-order buffer
    // Open connection-flow-control stall span start (-1us = none): set when
    // the sender is starved of MAX_DATA credit, closed when credit arrives.
    TimePoint fc_stall_since{-1};
    DirState(CcConfig cc_cfg, Duration initial_rto, Duration min_rto, Duration max_rto,
             Duration rto_extra)
        : cc(cc_cfg), rtt(initial_rto, min_rto, max_rto, rto_extra) {}
  };

  struct StreamState {
    StreamId id = 0;
    int priority = 3;
    std::size_t req_size = 0;
    std::size_t resp_size = 0;
    Duration server_think{0};
    FetchCallbacks cb;
    TimePoint opened_at{0};
    // Sender-side progress
    std::size_t req_sent_offset = 0;
    std::size_t resp_sent_offset = 0;
    bool request_sent_reported = false;
    // Flow control (per stream, per direction): sender limit + granted credit
    std::size_t req_flow_limit = 0;
    std::size_t resp_flow_limit = 0;
    std::size_t req_granted = 0;
    std::size_t resp_granted = 0;
    // Receiver-side progress (in-order delivered bytes)
    std::size_t req_delivered = 0;
    std::size_t resp_delivered = 0;
    // QUIC per-stream reassembly
    std::size_t req_recv_next = 0;
    std::size_t resp_recv_next = 0;
    std::map<std::size_t, std::size_t> req_ooo;   // offset -> len
    std::map<std::size_t, std::size_t> resp_ooo;  // offset -> len
    bool response_active = false;
    bool first_byte_reported = false;
    bool done = false;
    // Response-stall accounting: while any of this stream's response bytes
    // sit undeliverable behind a gap, `stall_since` holds the span start
    // (-1us = no open span). Spans close when the blocking gap fills; totals
    // accumulate here and in ConnectionStats.
    TimePoint stall_since{-1};
    std::size_t stalled_bytes = 0;  // bytes parked while the span was open
    Duration hol_stall_total{0};
    Duration retx_wait_total{0};
    // Attached by a ServerHold resume(); surfaced via stream_annotation().
    std::shared_ptr<void> annotation;
  };

  DirState& dir(Dir d) { return *dirs_[static_cast<std::size_t>(d)]; }

  // --- handshake ---
  void start_handshake_attempt();
  void handshake_step_done(std::uint64_t generation);
  void finish_handshake();
  Duration handshake_timeout_now() const;

  // --- data path ---
  int scheduling_bucket(const StreamState& st) const;
  void activate_request(StreamId sid);
  void activate_response(StreamId sid);
  void start_server_hold(StreamId sid);
  void pump(Dir d);
  std::optional<Chunk> next_chunk(Dir d);
  void send_chunk(Dir d, const Chunk& chunk, bool is_retx);
  void on_packet_arrive(Dir d, std::uint64_t packet_num, Chunk chunk);
  void deliver_in_order(Dir d, const Chunk& chunk);
  void open_resp_stall(StreamId sid, std::size_t bytes);
  void close_resp_stall(StreamId sid, bool cross_stream);
  void close_fc_stall(Dir d);
  void credit_stream(Dir d, StreamId sid, std::size_t offset, std::size_t len);
  void on_ack(Dir d, std::uint64_t packet_num);
  void maybe_grant_credit(Dir d, StreamId sid);
  void declare_lost(Dir d, std::uint64_t packet_num, bool from_rto);
  void arm_rto(Dir d);
  void handle_rto(Dir d);
  bool has_sendable_data(Dir d);
  std::size_t overhead() const;
  void die(ConnectionError error);
  net::PacketClass pclass() const;  // the transport class middleboxes see

  sim::Simulator& sim_;
  net::NetPath& path_;
  tls::TransportKind kind_;
  tls::TlsVersion version_;
  tls::HandshakeMode mode_;
  util::Rng rng_;
  TransportConfig config_;

  std::array<std::unique_ptr<DirState>, 2> dirs_;
  std::map<StreamId, StreamState> streams_;
  std::vector<StreamId> pending_before_ready_;
  StreamId next_stream_id_ = 1;
  std::size_t active_stream_count_ = 0;

  bool connect_called_ = false;
  bool ready_ = false;
  bool closed_ = false;
  bool kill_scheduled_ = false;  // kill_response_at_bytes fired (at most once)
  std::size_t resp_delivered_total_ = 0;  // across all streams, for the kill trigger
  int consecutive_rtos_ = 0;  // across both directions; any ACK resets it
  std::function<void(TimePoint)> on_ready_;
  std::function<void(ConnectionError, TimePoint)> on_dead_;
  std::function<void(tls::SessionTicket)> ticket_sink_;
  std::shared_ptr<trace::ConnectionTrace> trace_;
  std::array<std::size_t, 2> last_traced_cwnd_{0, 0};
  std::uint64_t hs_generation_ = 0;
  int hs_steps_left_ = 0;
  int hs_total_steps_ = 0;
  int hs_retries_this_step_ = 0;
  sim::EventId hs_timer_ = 0;
  // Server-capacity admission state. A refusal leaves admitted_ false so a
  // lost refusal flight's handshake retry re-consults the (possibly drained)
  // server. admission_delay_ is consumed by the first cert-step processing;
  // retransmits of an admitted flight do not pay the queue twice.
  bool admitted_ = false;
  Duration admission_delay_{0};

  ConnectionStats stats_;
};

}  // namespace h3cdn::transport
