// Asynchronous server-side response gate (used by src/topology/).
//
// Normally a stream's response activates a fixed `server_think` after the
// full request is delivered. A fetch that carries a ServerHold instead hands
// control to the hold when the request lands at the server: the hold runs
// arbitrary simulation work (e.g. a relay fetching the resource upstream)
// and then either resumes the response or kills the connection.
//
// This header is deliberately tiny (util/types.h only) so http/types.h can
// carry a hold on every Request without pulling in the transport machinery.
#pragma once

#include <functional>
#include <memory>

#include "util/types.h"

namespace h3cdn::transport {

/// Handed to a ServerHold when the full request reaches the server. Exactly
/// one of the two controls may fire, once; later calls are ignored.
struct ServerHoldControls {
  /// Starts the response after `extra_think` (added on top of the stream's
  /// own server_think). `annotation` is attached to the stream and readable
  /// via Connection::stream_annotation() after completion — the relay chain
  /// uses it to hand per-hop timings back to the downstream session.
  std::function<void(Duration extra_think, std::shared_ptr<void> annotation)> resume;
  /// Kills the connection with a typed ConnectionError::Killed death (the
  /// mid-tier-outage path). Scheduled at now+0 like kill_response_at_bytes.
  std::function<void()> kill;
};

/// The gate itself: invoked at request arrival with the simulation time.
using ServerHold = std::function<void(TimePoint now, const ServerHoldControls& controls)>;

}  // namespace h3cdn::transport
