#include "transport/rtt_estimator.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace h3cdn::transport {

namespace {
// RFC 6298 clock granularity term G; 1 ms is the conventional modern value.
constexpr Duration kGranularity = msec(1);
}  // namespace

RttEstimator::RttEstimator(Duration initial_rto, Duration min_rto, Duration max_rto,
                           Duration extra)
    : initial_rto_(initial_rto), min_rto_(min_rto), max_rto_(max_rto), extra_(extra) {
  H3CDN_EXPECTS(initial_rto > Duration::zero());
  H3CDN_EXPECTS(min_rto > Duration::zero() && min_rto <= max_rto);
}

void RttEstimator::sample(Duration rtt) {
  H3CDN_EXPECTS(rtt >= Duration::zero());
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = Duration{rtt.count() / 2};
    has_sample_ = true;
    return;
  }
  const auto err = Duration{std::abs((srtt_ - rtt).count())};
  rttvar_ = Duration{(3 * rttvar_.count() + err.count()) / 4};
  srtt_ = Duration{(7 * srtt_.count() + rtt.count()) / 8};
}

Duration RttEstimator::rto() const {
  Duration base = initial_rto_;
  if (has_sample_) {
    base = srtt_ + std::max(kGranularity, Duration{4 * rttvar_.count()}) + extra_;
  }
  base = std::clamp(base, min_rto_, max_rto_);
  // Exponential backoff, saturating at max_rto_.
  for (int i = 0; i < backoff_exp_ && base < max_rto_; ++i) {
    base = std::min(Duration{base.count() * 2}, max_rto_);
  }
  return base;
}

Duration RttEstimator::srtt() const {
  return has_sample_ ? srtt_ : Duration{initial_rto_.count() / 2};
}

void RttEstimator::backoff() {
  if (backoff_exp_ < 16) ++backoff_exp_;
}

void RttEstimator::reset_backoff() { backoff_exp_ = 0; }

}  // namespace h3cdn::transport
