#include "transport/congestion.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace h3cdn::transport {

namespace {
constexpr double kCubicC = 0.4;
constexpr double kCubicBeta = 0.7;
constexpr double kRenoBeta = 0.5;
}  // namespace

CongestionController::CongestionController(CcConfig config)
    : config_(config),
      cwnd_(static_cast<double>(config.initial_cwnd)),
      ssthresh_(static_cast<double>(config.max_cwnd)) {
  H3CDN_EXPECTS(config.min_cwnd >= 1);
  H3CDN_EXPECTS(config.initial_cwnd >= config.min_cwnd);
  H3CDN_EXPECTS(config.max_cwnd >= config.initial_cwnd);
}

void CongestionController::on_ack(TimePoint now) {
  if (cwnd_ < ssthresh_) {
    cwnd_ += 1.0;  // slow start: one packet per ack
  } else if (config_.algorithm == CcAlgorithm::NewReno) {
    cwnd_ += 1.0 / cwnd_;  // congestion avoidance: ~one packet per RTT
  } else {
    // Simplified CUBIC: W(t) = C*(t-K)^3 + W_max, clocked by wall time since
    // the start of the current congestion-avoidance epoch.
    if (epoch_start_ < TimePoint{0}) {
      epoch_start_ = now;
      if (w_max_ <= 0.0) w_max_ = cwnd_;
    }
    const double t = to_sec(now - epoch_start_);
    const double k = std::cbrt(w_max_ * (1.0 - kCubicBeta) / kCubicC);
    const double target = kCubicC * std::pow(t - k, 3.0) + w_max_;
    if (target > cwnd_) {
      cwnd_ += std::min(1.0, (target - cwnd_) / cwnd_);
    } else {
      cwnd_ += 0.01 / cwnd_;  // minimal growth while below the cubic curve
    }
  }
  cwnd_ = std::min(cwnd_, static_cast<double>(config_.max_cwnd));
}

void CongestionController::reduce(TimePoint now, double factor) {
  w_max_ = cwnd_;
  ssthresh_ = std::max(cwnd_ * factor, static_cast<double>(config_.min_cwnd));
  cwnd_ = ssthresh_;
  recovery_start_ = now;
  epoch_start_ = TimePoint{-1};
  ++loss_episodes_;
}

void CongestionController::on_loss(TimePoint sent_time, TimePoint now) {
  // NewReno-style: only one reduction per window of data. A packet sent
  // before the current recovery episode began reflects the same congestion
  // event that already triggered the reduction.
  if (recovery_start_ >= TimePoint{0} && sent_time <= recovery_start_) return;
  reduce(now, config_.algorithm == CcAlgorithm::Cubic ? kCubicBeta : kRenoBeta);
}

void CongestionController::on_rto(TimePoint now) {
  w_max_ = cwnd_;
  ssthresh_ = std::max(cwnd_ * kRenoBeta, static_cast<double>(config_.min_cwnd));
  cwnd_ = static_cast<double>(config_.min_cwnd);
  recovery_start_ = now;
  epoch_start_ = TimePoint{-1};
  ++loss_episodes_;
}

std::size_t CongestionController::cwnd() const {
  return std::max<std::size_t>(static_cast<std::size_t>(cwnd_), config_.min_cwnd);
}

}  // namespace h3cdn::transport
