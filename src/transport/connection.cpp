#include "transport/connection.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/check.h"

namespace h3cdn::transport {

namespace {

Duration initial_rto_for_path(const net::NetPath& path) {
  // Until an RTT sample exists, time out after twice the base path RTT
  // (plus slack for serialization), floored at 250 ms — in the same regime
  // as TCP's initial SYN timers and QUIC's 333 ms kInitialRtt-based PTO.
  return std::max(Duration{path.base_rtt().count() * 2} + msec(20), msec(250));
}

}  // namespace

const char* to_string(ConnectionError e) {
  switch (e) {
    case ConnectionError::None: return "none";
    case ConnectionError::HandshakeTimeout: return "handshake_timeout";
    case ConnectionError::Blackhole: return "blackhole";
    case ConnectionError::Refused: return "refused";
    case ConnectionError::Killed: return "killed";
  }
  return "?";
}

std::shared_ptr<Connection> Connection::create(sim::Simulator& sim, net::NetPath& path,
                                               tls::TransportKind kind, tls::TlsVersion version,
                                               tls::HandshakeMode mode, util::Rng rng,
                                               TransportConfig config) {
  // QUIC mandates TLS 1.3 (RFC 9001); normalize rather than burden callers.
  if (kind == tls::TransportKind::Quic) version = tls::TlsVersion::Tls13;
  // 0-RTT requires a resumption secret; Fresh+ZeroRtt is contradictory.
  if (mode == tls::HandshakeMode::ZeroRtt && version != tls::TlsVersion::Tls13) {
    mode = tls::HandshakeMode::Resumed;
  }
  return std::shared_ptr<Connection>(
      new Connection(sim, path, kind, version, mode, rng, std::move(config)));
}

Connection::Connection(sim::Simulator& sim, net::NetPath& path, tls::TransportKind kind,
                       tls::TlsVersion version, tls::HandshakeMode mode, util::Rng rng,
                       TransportConfig config)
    : sim_(sim),
      path_(path),
      kind_(kind),
      version_(version),
      mode_(mode),
      rng_(rng),
      config_(std::move(config)) {
  const Duration init_rto = initial_rto_for_path(path_);
  const bool is_tcp = kind == tls::TransportKind::Tcp;
  const Duration min_rto = is_tcp ? config_.min_rto_tcp : config_.min_rto_quic;
  const Duration rto_extra = is_tcp ? Duration::zero() : config_.pto_ack_delay_quic;
  dirs_[0] =
      std::make_unique<DirState>(config_.cc, init_rto, min_rto, config_.max_rto, rto_extra);
  dirs_[1] =
      std::make_unique<DirState>(config_.cc, init_rto, min_rto, config_.max_rto, rto_extra);
  for (auto& d : dirs_) {
    d->conn_flow_limit = config_.initial_connection_window;
    d->conn_granted = config_.initial_connection_window;
  }
}

std::size_t Connection::mss() const {
  return kind_ == tls::TransportKind::Tcp ? config_.mss_tcp : config_.mss_quic;
}

std::size_t Connection::overhead() const {
  return kind_ == tls::TransportKind::Tcp ? config_.overhead_tcp : config_.overhead_quic;
}

net::PacketClass Connection::pclass() const {
  // Every QUIC packet — data, handshake, ACKs — is a UDP datagram on the
  // wire, which is exactly what a UDP-blackholing middlebox drops.
  return kind_ == tls::TransportKind::Quic ? net::PacketClass::Udp : net::PacketClass::Tcp;
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

void Connection::connect(std::function<void(TimePoint)> on_ready) {
  H3CDN_EXPECTS(!connect_called_);
  H3CDN_EXPECTS(!closed_);
  connect_called_ = true;
  on_ready_ = std::move(on_ready);
  stats_.mode = mode_;
  stats_.connect_start = sim_.now();
  obs::count("transport.connections_opened");
  obs::count(kind_ == tls::TransportKind::Quic ? "transport.connections_opened.quic"
                                               : "transport.connections_opened.tcp");
  if (trace_) trace_->record({sim_.now(), trace::EventType::HandshakeStarted});

  hs_total_steps_ = tls::handshake_rtts(kind_, version_, mode_);
  hs_steps_left_ = hs_total_steps_;
  if (hs_steps_left_ == 0) {
    // 0-RTT over QUIC: application data may ride the first flight. Model the
    // (cheap) PSK key schedule as an immediate finish.
    auto self = shared_from_this();
    if (config_.handshake_admission) {
      const auto verdict = config_.handshake_admission(sim_.now(), kind_, mode_);
      if (!verdict.has_value()) {
        // 0-RTT rejection at capacity: the client only learns one round trip
        // later, when the refusal flight lands. Modelled lossless — there is
        // no handshake timer in this path to drive a retry.
        obs::count("transport.handshake.refused");
        path_.send_up(
            config_.handshake_client_packet_bytes,
            [self] {
              if (self->closed_) return;
              self->path_.send_down(
                  self->config_.handshake_small_flight_bytes,
                  [self] {
                    if (!self->closed_) self->die(ConnectionError::Refused);
                  },
                  /*lossless=*/true, self->pclass());
            },
            /*lossless=*/true, pclass());
        return;
      }
      // The discounted PSK CPU is server-side only; the client proceeds
      // immediately, which is the point of 0-RTT.
      admitted_ = true;
    }
    sim_.schedule_in(Duration::zero(), [self] {
      if (!self->closed_) self->finish_handshake();
    });
    return;
  }
  start_handshake_attempt();
}

Duration Connection::handshake_timeout_now() const {
  Duration base = config_.handshake_timeout;
  if (base == Duration::zero()) base = initial_rto_for_path(path_);
  for (int i = 0; i < hs_retries_this_step_ && base < config_.max_rto; ++i) {
    base = std::min(Duration{base.count() * 2}, config_.max_rto);
  }
  return base;
}

void Connection::start_handshake_attempt() {
  obs::ProfileScope profile("transport.handshake_attempt");
  const std::uint64_t gen = ++hs_generation_;
  auto self = shared_from_this();

  const int step_index = hs_total_steps_ - hs_steps_left_ + 1;  // 1-based
  // The certificate-bearing server flight: QUIC packs it into its single
  // round trip; TCP+TLS sends it on the first TLS round trip (step 2).
  const bool cert_step = (kind_ == tls::TransportKind::Quic && step_index == 1) ||
                         (kind_ == tls::TransportKind::Tcp && step_index == 2);
  const std::size_t down_bytes =
      cert_step ? tls::handshake_server_flight_bytes(version_, mode_)
                : config_.handshake_small_flight_bytes;
  const Duration server_cost =
      cert_step ? tls::handshake_compute_cost(version_, mode_) : Duration::zero();

  path_.send_up(
      config_.handshake_client_packet_bytes,
      [self, gen, down_bytes, server_cost, cert_step] {
        if (self->closed_ || gen != self->hs_generation_) return;
        Duration cost = server_cost;
        if (cert_step && self->config_.handshake_admission && !self->admitted_) {
          const auto verdict =
              self->config_.handshake_admission(self->sim_.now(), self->kind_, self->mode_);
          if (!verdict.has_value()) {
            // Refused (RST / CONNECTION_REFUSED analogue): a small terminal
            // flight. If it is lost, the handshake timer retries the attempt
            // and the retry re-consults the (possibly drained) server.
            obs::count("transport.handshake.refused");
            self->path_.send_down(
                self->config_.handshake_small_flight_bytes,
                [self, gen] {
                  if (self->closed_ || gen != self->hs_generation_) return;
                  self->die(ConnectionError::Refused);
                },
                /*lossless=*/false, self->pclass());
            return;
          }
          self->admitted_ = true;
          self->admission_delay_ = *verdict;
        }
        if (cert_step) {
          // Accept-queue wait + handshake CPU, paid once; a retransmit of an
          // admitted flight does not re-queue.
          cost += self->admission_delay_;
          self->admission_delay_ = Duration::zero();
        }
        self->sim_.schedule_in(cost, [self, gen, down_bytes] {
          if (self->closed_ || gen != self->hs_generation_) return;
          self->path_.send_down(
              down_bytes, [self, gen] { self->handshake_step_done(gen); },
              /*lossless=*/false, self->pclass());
        });
      },
      /*lossless=*/false, pclass());

  hs_timer_ = sim_.schedule_in(handshake_timeout_now(), [self, gen] {
    if (self->closed_ || gen != self->hs_generation_) return;
    if (self->config_.max_handshake_retries > 0 &&
        self->stats_.handshake_retries >= self->config_.max_handshake_retries) {
      self->die(ConnectionError::HandshakeTimeout);
      return;
    }
    ++self->stats_.handshake_retries;
    ++self->hs_retries_this_step_;
    obs::count("transport.handshake.retries");
    if (self->trace_) {
      trace::Event ev{self->sim_.now(), trace::EventType::HandshakeRetry};
      ev.fault = trace::FaultKind::HandshakeTimeout;
      self->trace_->record(ev);
    }
    self->start_handshake_attempt();
  });
}

void Connection::handshake_step_done(std::uint64_t generation) {
  if (closed_ || generation != hs_generation_) return;
  sim_.cancel(hs_timer_);
  hs_timer_ = 0;
  ++hs_generation_;  // invalidate the timer and any duplicate arrivals
  hs_retries_this_step_ = 0;
  --hs_steps_left_;
  if (hs_steps_left_ == 0) {
    finish_handshake();
  } else {
    start_handshake_attempt();
  }
}

void Connection::finish_handshake() {
  H3CDN_ASSERT(!ready_);
  ready_ = true;
  stats_.ready_at = sim_.now();
  stats_.connect_time = stats_.ready_at - stats_.connect_start;
  obs::observe_ms("transport.handshake.duration_ms", stats_.connect_time);
  if (trace_) trace_->record({sim_.now(), trace::EventType::HandshakeFinished});

  // NewSessionTicket: servers (re)issue tickets on every connection; the
  // browser stores it keyed by domain for future visits.
  if (ticket_sink_) {
    tls::SessionTicket ticket;
    ticket.domain = config_.domain;
    ticket.issued_at = sim_.now();
    ticket.version = version_;
    ticket.early_data_allowed = (version_ == tls::TlsVersion::Tls13);
    ticket_sink_(ticket);
  }

  for (StreamId sid : pending_before_ready_) activate_request(sid);
  pending_before_ready_.clear();

  if (on_ready_) on_ready_(sim_.now());
}

void Connection::set_ticket_sink(std::function<void(tls::SessionTicket)> sink) {
  ticket_sink_ = std::move(sink);
}

void Connection::set_trace(std::shared_ptr<trace::ConnectionTrace> trace) {
  trace_ = std::move(trace);
}

// ---------------------------------------------------------------------------
// Fetch / stream management
// ---------------------------------------------------------------------------

StreamId Connection::fetch(std::size_t request_bytes, std::size_t response_bytes,
                           Duration server_think, FetchCallbacks callbacks, int priority) {
  H3CDN_EXPECTS(!closed_);
  H3CDN_EXPECTS(request_bytes > 0 && response_bytes > 0);
  H3CDN_EXPECTS(server_think >= Duration::zero());

  const StreamId sid = next_stream_id_++;
  StreamState st;
  st.id = sid;
  st.priority = priority;
  st.req_size = request_bytes;
  st.resp_size = response_bytes;
  st.req_flow_limit = config_.initial_stream_window;
  st.resp_flow_limit = config_.initial_stream_window;
  st.req_granted = config_.initial_stream_window;
  st.resp_granted = config_.initial_stream_window;
  st.server_think = server_think;
  st.cb = std::move(callbacks);
  st.opened_at = sim_.now();
  streams_.emplace(sid, std::move(st));
  ++stats_.streams_opened;
  ++active_stream_count_;
  obs::count("transport.streams_opened");
  if (trace_) {
    trace::Event ev{sim_.now(), trace::EventType::StreamOpened};
    ev.stream_id = sid;
    ev.bytes = response_bytes;
    trace_->record(ev);
  }

  if (ready_) {
    activate_request(sid);
  } else {
    pending_before_ready_.push_back(sid);
  }
  return sid;
}

int Connection::scheduling_bucket(const StreamState& st) const {
  // Requests are tiny; only response scheduling is prioritized.
  if (!config_.respect_priorities) return 0;
  const int coarseness = std::max(1, config_.priority_coarseness);
  return st.priority / coarseness;
}

void Connection::activate_request(StreamId sid) {
  dir(Dir::Up).rr[0].push_back(sid);
  pump(Dir::Up);
}

void Connection::activate_response(StreamId sid) {
  auto& st = streams_.at(sid);
  H3CDN_ASSERT(!st.response_active);
  st.response_active = true;
  dir(Dir::Down).rr[scheduling_bucket(st)].push_back(sid);
  pump(Dir::Down);
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

bool Connection::has_sendable_data(Dir d) {
  auto& s = dir(d);
  if (!s.retx_queue.empty()) return true;
  if (s.conn_bytes_assigned >= s.conn_flow_limit) return false;  // conn window full
  for (auto it = s.rr.begin(); it != s.rr.end();) {
    auto& bucket = it->second;
    std::size_t scanned = 0;
    while (!bucket.empty() && scanned < bucket.size()) {
      const StreamId sid = bucket.front();
      const auto& st = streams_.at(sid);
      const std::size_t sent = d == Dir::Up ? st.req_sent_offset : st.resp_sent_offset;
      const std::size_t size = d == Dir::Up ? st.req_size : st.resp_size;
      if (sent >= size) {
        bucket.pop_front();  // fully carved; drop from the rotation
        continue;
      }
      const std::size_t limit = d == Dir::Up ? st.req_flow_limit : st.resp_flow_limit;
      if (sent < limit) return true;
      bucket.pop_front();  // window-blocked: rotate and keep scanning
      bucket.push_back(sid);
      ++scanned;
    }
    if (bucket.empty()) {
      it = s.rr.erase(it);  // empty priority bucket
    } else {
      ++it;  // bucket entirely window-blocked; lower-priority buckets may send
    }
  }
  return false;
}

std::optional<Connection::Chunk> Connection::next_chunk(Dir d) {
  auto& s = dir(d);
  if (!s.retx_queue.empty()) {
    Chunk c = s.retx_queue.front();
    s.retx_queue.pop_front();
    return c;
  }
  // Connection-level flow control: no new payload past the advertised limit.
  if (s.conn_bytes_assigned >= s.conn_flow_limit) return std::nullopt;
  // Strict priority across buckets; FIFO rotation within one. A bucket whose
  // streams are all window-blocked yields to lower-priority buckets.
  for (auto bucket_it = s.rr.begin(); bucket_it != s.rr.end();) {
    auto& bucket = bucket_it->second;
    std::size_t scanned = 0;
    while (!bucket.empty() && scanned <= bucket.size()) {
    const StreamId sid = bucket.front();
    auto& st = streams_.at(sid);
    std::size_t& sent = d == Dir::Up ? st.req_sent_offset : st.resp_sent_offset;
    const std::size_t size = d == Dir::Up ? st.req_size : st.resp_size;
    if (sent >= size) {
      bucket.pop_front();
      continue;
    }
    // Stream-level flow control: rotate a blocked stream to the back of its
    // bucket and try the rest of the bucket.
    const std::size_t stream_limit = d == Dir::Up ? st.req_flow_limit : st.resp_flow_limit;
    if (sent >= stream_limit) {
      bucket.pop_front();
      bucket.push_back(sid);
      ++scanned;
      continue;
    }
    Chunk c;
    c.stream = sid;
    c.stream_offset = sent;
    c.len = std::min({mss(), size - sent, stream_limit - sent,
                      s.conn_flow_limit - s.conn_bytes_assigned});
    c.conn_offset = s.conn_bytes_assigned;
    s.conn_bytes_assigned += c.len;
    sent += c.len;
    // Rotate within the priority bucket so same-urgency responses interleave
    // (both H2 and H3 frame-multiplex this way).
    bucket.pop_front();
    if (sent < size) bucket.push_back(sid);
    if (d == Dir::Up && sent >= size && !st.request_sent_reported) {
      st.request_sent_reported = true;
      if (st.cb.on_request_sent) st.cb.on_request_sent(sim_.now());
    }
    return c;
    }
    if (bucket.empty()) {
      bucket_it = s.rr.erase(bucket_it);
    } else {
      ++bucket_it;  // entirely window-blocked bucket: try lower priorities
    }
  }
  return std::nullopt;
}

void Connection::send_chunk(Dir d, const Chunk& chunk, bool is_retx) {
  auto& s = dir(d);
  const std::uint64_t num = s.next_packet_num++;
  s.in_flight.emplace(num, SentPacket{chunk, sim_.now(), is_retx});
  ++stats_.packets_sent;
  stats_.bytes_sent += chunk.len;
  obs::count("transport.packets_sent");
  if (is_retx) {
    ++stats_.retransmissions;
    obs::count("transport.retransmissions");
  }
  if (trace_) {
    trace::Event ev{sim_.now(),
                    is_retx ? trace::EventType::Retransmission : trace::EventType::PacketSent};
    ev.packet_number = num;
    ev.stream_id = chunk.stream;
    ev.bytes = chunk.len;
    ev.is_client_to_server = d == Dir::Up;
    trace_->record(ev);
  }

  auto self = shared_from_this();
  auto deliver = [self, d, num, chunk] { self->on_packet_arrive(d, num, chunk); };
  if (d == Dir::Up) {
    path_.send_up(chunk.len + overhead(), std::move(deliver), /*lossless=*/false, pclass());
  } else {
    path_.send_down(chunk.len + overhead(), std::move(deliver), /*lossless=*/false, pclass());
  }
}

void Connection::pump(Dir d) {
  if (closed_ || !ready_) return;
  auto& s = dir(d);
  while (s.in_flight.size() < s.cc.cwnd() && has_sendable_data(d)) {
    const bool is_retx = !s.retx_queue.empty();
    auto chunk = next_chunk(d);
    H3CDN_ASSERT(chunk.has_value());
    send_chunk(d, *chunk, is_retx);
  }
  // Flow-control stall accounting: congestion window open, data pending,
  // but every pending stream (or the connection itself) is window-blocked.
  if (s.in_flight.size() < s.cc.cwnd() && !has_sendable_data(d)) {
    bool data_pending = false;
    for (const auto& [prio, bucket] : s.rr) {
      for (StreamId sid : bucket) {
        const auto& st = streams_.at(sid);
        const std::size_t sent = d == Dir::Up ? st.req_sent_offset : st.resp_sent_offset;
        const std::size_t size = d == Dir::Up ? st.req_size : st.resp_size;
        if (sent < size) {
          data_pending = true;
          break;
        }
      }
      if (data_pending) break;
    }
    if (data_pending) {
      ++stats_.flow_blocked_events;
      obs::count("transport.flow_blocked");
      // Connection-scope starvation (MAX_DATA exhausted) opens a stall span;
      // it closes when the receiver's next credit grant arrives. Stream-scope
      // blocks are excluded: only the connection window couples streams.
      if (s.conn_bytes_assigned >= s.conn_flow_limit && s.fc_stall_since < TimePoint{0}) {
        s.fc_stall_since = sim_.now();
      }
    }
  }
  arm_rto(d);
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void Connection::on_packet_arrive(Dir d, std::uint64_t packet_num, Chunk chunk) {
  if (closed_) return;
  auto& s = dir(d);
  ++stats_.packets_delivered;
  if (trace_) {
    trace::Event ev{sim_.now(), trace::EventType::PacketReceived};
    ev.packet_number = packet_num;
    ev.stream_id = chunk.stream;
    ev.bytes = chunk.len;
    ev.is_client_to_server = d == Dir::Up;
    trace_->record(ev);
  }

  if (kind_ == tls::TransportKind::Tcp) {
    // TCP: cumulative, connection-wide ordering. Anything beyond recv_next
    // waits in the out-of-order buffer — including data of unrelated streams
    // (this *is* head-of-line blocking).
    if (chunk.conn_offset >= s.recv_next_conn &&
        s.conn_ooo.find(chunk.conn_offset) == s.conn_ooo.end()) {
      const bool fills_gap = chunk.conn_offset == s.recv_next_conn;
      s.conn_ooo.emplace(chunk.conn_offset, chunk);
      if (d == Dir::Down && !fills_gap) open_resp_stall(chunk.stream, chunk.len);
      if (d == Dir::Down && fills_gap) {
        // The gap that blocked every parked stream belonged to `chunk.stream`
        // (the retransmission that just filled it). Close all open stall
        // spans *before* draining — delivery below may complete a stream and
        // its observer reads stall totals synchronously. A span on the
        // filler's own stream was retransmission wait; any other stream was
        // a victim of TCP head-of-line blocking.
        for (auto& [sid, st] : streams_) {
          if (st.stall_since >= TimePoint{0}) close_resp_stall(sid, sid != chunk.stream);
        }
      }
      while (!s.conn_ooo.empty() && s.conn_ooo.begin()->first == s.recv_next_conn) {
        const Chunk next = s.conn_ooo.begin()->second;
        s.conn_ooo.erase(s.conn_ooo.begin());
        s.recv_next_conn += next.len;
        deliver_in_order(d, next);
      }
      if (d == Dir::Down && fills_gap) {
        // Chunks still parked behind the *next* gap stay blocked: reopen
        // their spans at the same instant so accounted intervals tile the
        // blocked time exactly.
        for (const auto& [off, parked] : s.conn_ooo) open_resp_stall(parked.stream, parked.len);
      }
    }
    // else: duplicate (spurious retransmission) — ignored, but still acked.
  } else {
    // QUIC: per-stream ordering; other streams are unaffected by this gap.
    auto it = streams_.find(chunk.stream);
    if (it != streams_.end()) {
      auto& st = it->second;
      auto& recv_next = d == Dir::Up ? st.req_recv_next : st.resp_recv_next;
      auto& ooo = d == Dir::Up ? st.req_ooo : st.resp_ooo;
      if (chunk.stream_offset >= recv_next && ooo.find(chunk.stream_offset) == ooo.end()) {
        const bool fills_gap = chunk.stream_offset == recv_next;
        ooo.emplace(chunk.stream_offset, chunk.len);
        if (d == Dir::Down && !fills_gap) open_resp_stall(chunk.stream, chunk.len);
        if (d == Dir::Down && fills_gap) {
          // QUIC gaps only ever block the stream's own data — cross-stream
          // HoL stalls are structurally impossible (the paper's Fig. 9
          // mechanism), so every span here is retransmission wait. Close
          // before draining: delivery may complete the stream and its
          // observer reads stall totals synchronously.
          close_resp_stall(chunk.stream, /*cross_stream=*/false);
        }
        while (!ooo.empty() && ooo.begin()->first == recv_next) {
          const std::size_t len = ooo.begin()->second;
          const std::size_t off = ooo.begin()->first;
          ooo.erase(ooo.begin());
          recv_next += len;
          Chunk ordered{chunk.stream, off, len, 0};
          deliver_in_order(d, ordered);
        }
        if (d == Dir::Down && fills_gap && !st.resp_ooo.empty()) {
          // Bytes still parked behind this stream's next gap stay blocked:
          // reopen at the same instant so spans tile the blocked time.
          std::size_t parked_bytes = 0;
          for (const auto& [poff, plen] : st.resp_ooo) parked_bytes += plen;
          open_resp_stall(chunk.stream, parked_bytes);
        }
      }
    }
  }

  // Acknowledge every received packet. ACKs ride the reverse link and are
  // modelled lossless (see DESIGN.md: data-direction loss dominates; lossy
  // ACKs would require ack-of-ack machinery without changing the compared
  // behaviours, which are identical for both transports).
  auto self = shared_from_this();
  auto deliver = [self, d, packet_num] { self->on_ack(d, packet_num); };
  if (d == Dir::Up) {
    path_.send_down(config_.ack_bytes, std::move(deliver), /*lossless=*/true, pclass());
  } else {
    path_.send_up(config_.ack_bytes, std::move(deliver), /*lossless=*/true, pclass());
  }
}

void Connection::deliver_in_order(Dir d, const Chunk& chunk) {
  dir(d).conn_delivered += chunk.len;
  credit_stream(d, chunk.stream, chunk.stream_offset, chunk.len);
  maybe_grant_credit(d, chunk.stream);
}

void Connection::open_resp_stall(StreamId sid, std::size_t bytes) {
  auto it = streams_.find(sid);
  if (it == streams_.end()) return;
  auto& st = it->second;
  if (st.stall_since < TimePoint{0}) st.stall_since = sim_.now();
  st.stalled_bytes += bytes;
}

void Connection::close_resp_stall(StreamId sid, bool cross_stream) {
  auto it = streams_.find(sid);
  if (it == streams_.end()) return;
  auto& st = it->second;
  if (st.stall_since < TimePoint{0}) return;
  const Duration span = sim_.now() - st.stall_since;
  st.stall_since = TimePoint{-1};
  const std::size_t blocked_bytes = st.stalled_bytes;
  st.stalled_bytes = 0;
  if (span <= Duration::zero()) return;  // opened+closed at the same instant
  if (cross_stream) {
    st.hol_stall_total += span;
    stats_.hol_stall_total += span;
    obs::observe_ms("transport.stall.hol_ms", span);
  } else {
    st.retx_wait_total += span;
    stats_.retx_wait_total += span;
    obs::observe_ms("transport.stall.retx_wait_ms", span);
  }
  ++stats_.stall_spans;
  obs::count("transport.stall.spans");
  if (trace_) {
    trace::Event ev{sim_.now(), trace::EventType::StreamStallSpan};
    ev.stream_id = sid;
    ev.bytes = blocked_bytes;
    ev.duration_ms = to_ms(span);
    ev.cross_stream = cross_stream;
    ev.is_client_to_server = false;
    trace_->record(ev);
  }
}

void Connection::close_fc_stall(Dir d) {
  auto& s = dir(d);
  if (s.fc_stall_since < TimePoint{0}) return;
  const Duration span = sim_.now() - s.fc_stall_since;
  s.fc_stall_since = TimePoint{-1};
  if (span <= Duration::zero()) return;
  stats_.flow_control_stall_total += span;
  ++stats_.flow_control_stalls;
  obs::count("transport.stall.flow_control");
  obs::observe_ms("transport.stall.flow_control_ms", span);
  if (trace_) {
    trace::Event ev{sim_.now(), trace::EventType::FlowControlStallSpan};
    ev.duration_ms = to_ms(span);
    ev.is_client_to_server = d == Dir::Up;
    trace_->record(ev);
  }
}

StreamStallTotals Connection::stall_totals(StreamId sid) const {
  auto it = streams_.find(sid);
  if (it == streams_.end()) return {};
  return {it->second.hol_stall_total, it->second.retx_wait_total};
}

std::size_t Connection::stream_bytes_received(StreamId sid) const {
  auto it = streams_.find(sid);
  if (it == streams_.end()) return 0;
  return it->second.resp_delivered;
}

std::shared_ptr<void> Connection::stream_annotation(StreamId sid) const {
  auto it = streams_.find(sid);
  if (it == streams_.end()) return nullptr;
  return it->second.annotation;
}

void Connection::start_server_hold(StreamId sid) {
  auto& st = streams_.at(sid);
  auto self = shared_from_this();
  // One-shot latch shared by both controls: whichever fires first wins and
  // later invocations (e.g. an upstream completion racing a scripted kill)
  // are ignored.
  auto fired = std::make_shared<bool>(false);
  const Duration base_think = st.server_think;
  ServerHoldControls controls;
  controls.resume = [self, sid, fired, base_think](Duration extra,
                                                   std::shared_ptr<void> annotation) {
    if (*fired) return;
    *fired = true;
    if (self->closed_) return;
    auto it = self->streams_.find(sid);
    if (it == self->streams_.end()) return;
    it->second.annotation = std::move(annotation);
    const Duration think = base_think + std::max(extra, Duration::zero());
    self->sim_.schedule_in(think, [self, sid] {
      if (self->closed_) return;
      self->activate_response(sid);
    });
  };
  controls.kill = [self, fired] {
    if (*fired) return;
    *fired = true;
    if (self->closed_) return;
    // Tear down via the event loop, mirroring kill_response_at_bytes.
    self->sim_.schedule_in(Duration::zero(), [self] {
      if (!self->closed_) self->die(ConnectionError::Killed);
    });
  };
  // Copy the hold out of the stream before invoking: it may re-enter the
  // simulator and mutate streams_ (e.g. a mid-tier cache hit resuming
  // synchronously).
  ServerHold hold = st.cb.on_server_request;
  hold(sim_.now(), controls);
}

void Connection::maybe_grant_credit(Dir d, StreamId sid) {
  // Receiver-side autotuning: once half of the advertised credit has been
  // consumed, advertise another half-window (connection and stream scope).
  auto& s = dir(d);
  const std::size_t half_conn = config_.initial_connection_window / 2;
  bool update = false;
  if (s.conn_granted - s.conn_delivered < half_conn) {
    s.conn_granted += half_conn;
    update = true;
  }
  std::size_t new_stream_limit = 0;
  auto it = streams_.find(sid);
  if (it != streams_.end()) {
    auto& st = it->second;
    const std::size_t delivered = d == Dir::Up ? st.req_delivered : st.resp_delivered;
    std::size_t& granted = d == Dir::Up ? st.req_granted : st.resp_granted;
    const std::size_t half_stream = config_.initial_stream_window / 2;
    if (granted - delivered < half_stream) {
      granted += half_stream;
      new_stream_limit = granted;
      update = true;
    }
  }
  if (!update) return;
  // WINDOW_UPDATE / MAX_DATA control packet to the sender (reverse path,
  // modelled lossless like ACKs).
  ++stats_.window_updates_sent;
  const std::size_t conn_limit = s.conn_granted;
  auto self = shared_from_this();
  auto apply = [self, d, sid, conn_limit, new_stream_limit] {
    if (self->closed_) return;
    auto& sender = self->dir(d);
    if (conn_limit > sender.conn_flow_limit) self->close_fc_stall(d);
    sender.conn_flow_limit = std::max(sender.conn_flow_limit, conn_limit);
    if (new_stream_limit > 0) {
      auto sit = self->streams_.find(sid);
      if (sit != self->streams_.end()) {
        std::size_t& limit =
            d == Dir::Up ? sit->second.req_flow_limit : sit->second.resp_flow_limit;
        limit = std::max(limit, new_stream_limit);
      }
    }
    self->pump(d);
  };
  if (d == Dir::Up) {
    path_.send_down(config_.ack_bytes, std::move(apply), /*lossless=*/true, pclass());
  } else {
    path_.send_up(config_.ack_bytes, std::move(apply), /*lossless=*/true, pclass());
  }
}

void Connection::credit_stream(Dir d, StreamId sid, std::size_t /*offset*/, std::size_t len) {
  auto it = streams_.find(sid);
  if (it == streams_.end()) return;
  auto& st = it->second;
  if (d == Dir::Up) {
    st.req_delivered += len;
    H3CDN_ASSERT(st.req_delivered <= st.req_size);
    if (st.req_delivered == st.req_size) {
      if (st.cb.on_server_request) {
        // Gated response: the hold decides when (or whether) to start it.
        start_server_hold(sid);
      } else {
        // Full request at the server: think, then start the response.
        auto self = shared_from_this();
        sim_.schedule_in(st.server_think, [self, sid] {
          if (self->closed_) return;
          self->activate_response(sid);
        });
      }
    }
  } else {
    if (!st.first_byte_reported) {
      st.first_byte_reported = true;
      if (st.cb.on_first_byte) st.cb.on_first_byte(sim_.now());
    }
    st.resp_delivered += len;
    H3CDN_ASSERT(st.resp_delivered <= st.resp_size);
    resp_delivered_total_ += len;
    if (config_.kill_response_at_bytes > 0 && !kill_scheduled_ &&
        resp_delivered_total_ >= config_.kill_response_at_bytes) {
      // Scripted mid-transfer kill: tear down via the event loop rather than
      // mid-delivery, so the remaining in-flight chunks of this packet still
      // credit their streams (resp_delivered stays exact for Range resume).
      kill_scheduled_ = true;
      auto self = shared_from_this();
      sim_.schedule_in(Duration::zero(), [self] {
        if (!self->closed_) self->die(ConnectionError::Killed);
      });
    }
    if (st.resp_delivered == st.resp_size && !st.done) {
      st.done = true;
      H3CDN_ASSERT(active_stream_count_ > 0);
      --active_stream_count_;
      if (trace_) {
        trace::Event ev{sim_.now(), trace::EventType::StreamFinished};
        ev.stream_id = sid;
        ev.bytes = st.resp_size;
        trace_->record(ev);
      }
      if (st.cb.on_complete) st.cb.on_complete(sim_.now());
    }
  }
}

// ---------------------------------------------------------------------------
// Acknowledgements, loss detection, RTO
// ---------------------------------------------------------------------------

void Connection::on_ack(Dir d, std::uint64_t packet_num) {
  if (closed_) return;
  auto& s = dir(d);
  ++stats_.acks_received;
  consecutive_rtos_ = 0;  // any ACK proves the path is alive

  auto it = s.in_flight.find(packet_num);
  if (it != s.in_flight.end()) {
    if (!it->second.is_retx) {
      s.rtt.sample(sim_.now() - it->second.sent);  // Karn: no retx samples
    }
    s.cc.on_ack(sim_.now());
    if (trace_) {
      trace::Event ev{sim_.now(), trace::EventType::PacketAcked};
      ev.packet_number = packet_num;
      ev.stream_id = it->second.chunk.stream;
      ev.is_client_to_server = d == Dir::Up;
      trace_->record(ev);
      const std::size_t cwnd = s.cc.cwnd();
      auto& last = last_traced_cwnd_[static_cast<std::size_t>(d)];
      if (cwnd != last) {
        last = cwnd;
        trace::Event cw{sim_.now(), trace::EventType::CwndUpdated};
        cw.cwnd = static_cast<double>(cwnd);
        cw.is_client_to_server = d == Dir::Up;
        trace_->record(cw);
      }
    }
    s.in_flight.erase(it);
    if (!s.any_acked || packet_num > s.largest_acked) {
      s.largest_acked = packet_num;
      s.any_acked = true;
    }
  }

  // Packet-threshold loss detection (RFC 9002 §6.1.1): a packet is lost once
  // `reorder_threshold` packets sent after it are acknowledged. QUIC
  // additionally runs time-threshold detection (§6.1.2): any packet older
  // than 9/8·RTT with a later packet acknowledged is declared lost without
  // waiting for three follow-ups or an RTO. Classic TCP loss detection has
  // no such early-retransmit path — its tail losses wait for the (>=200 ms)
  // RTO, and head-of-line blocking extends that stall to every H2 stream.
  if (s.any_acked) {
    const Duration time_threshold =
        Duration{std::max<std::int64_t>(s.rtt.srtt().count() * 9 / 8, msec(1).count())};
    std::vector<std::uint64_t> lost;
    for (const auto& [num, pkt] : s.in_flight) {
      if (num >= s.largest_acked) break;  // map is ordered by packet number
      if (num + config_.reorder_threshold <= s.largest_acked) {
        lost.push_back(num);
      } else if (kind_ == tls::TransportKind::Quic &&
                 pkt.sent + time_threshold <= sim_.now()) {
        lost.push_back(num);
      }
    }
    for (std::uint64_t num : lost) declare_lost(d, num, /*from_rto=*/false);
  }

  s.rtt.reset_backoff();
  arm_rto(d);
  pump(d);
}

void Connection::declare_lost(Dir d, std::uint64_t packet_num, bool from_rto) {
  auto& s = dir(d);
  auto it = s.in_flight.find(packet_num);
  if (it == s.in_flight.end()) return;
  const SentPacket pkt = it->second;
  s.in_flight.erase(it);
  ++stats_.packets_declared_lost;
  obs::count("transport.packets_lost");
  if (trace_) {
    trace::Event ev{sim_.now(), trace::EventType::PacketLost};
    ev.packet_number = packet_num;
    ev.stream_id = pkt.chunk.stream;
    ev.bytes = pkt.chunk.len;
    ev.is_client_to_server = d == Dir::Up;
    trace_->record(ev);
  }

  if (from_rto) {
    s.cc.on_rto(sim_.now());
  } else {
    s.cc.on_loss(pkt.sent, sim_.now());
  }
  // Retransmissions take priority over new data.
  s.retx_queue.push_front(pkt.chunk);
}

void Connection::arm_rto(Dir d) {
  auto& s = dir(d);
  if (s.rto_timer != 0) {
    sim_.cancel(s.rto_timer);
    s.rto_timer = 0;
  }
  if (s.in_flight.empty() || closed_) return;
  // in_flight is keyed by packet number; retransmissions get fresh (larger)
  // numbers, so the first entry is the oldest outstanding transmission.
  const TimePoint earliest = s.in_flight.begin()->second.sent;
  TimePoint fire_at = earliest + s.rtt.rto();
  if (fire_at <= sim_.now()) fire_at = sim_.now() + usec(1);
  auto self = shared_from_this();
  s.rto_timer = sim_.schedule_at(fire_at, [self, d] { self->handle_rto(d); });
}

void Connection::handle_rto(Dir d) {
  if (closed_) return;
  auto& s = dir(d);
  s.rto_timer = 0;
  if (s.in_flight.empty()) return;
  ++stats_.rto_fires;
  obs::count("transport.rto_fires");
  if (trace_) {
    trace::Event ev{sim_.now(), trace::EventType::RtoFired};
    ev.is_client_to_server = d == Dir::Up;
    trace_->record(ev);
  }
  // Blackhole detection: RTO fires with not a single ACK in between mean the
  // path is eating everything (the RTO backoff doubles between fires, so this
  // is a bounded wall-clock budget, not a fixed count of round trips).
  ++consecutive_rtos_;
  if (config_.blackhole_rto_threshold > 0 &&
      consecutive_rtos_ >= config_.blackhole_rto_threshold) {
    die(ConnectionError::Blackhole);
    return;
  }
  s.rtt.backoff();
  declare_lost(d, s.in_flight.begin()->first, /*from_rto=*/true);
  arm_rto(d);
  pump(d);
}

// ---------------------------------------------------------------------------

void Connection::set_on_dead(std::function<void(ConnectionError, TimePoint)> on_dead) {
  on_dead_ = std::move(on_dead);
}

void Connection::die(ConnectionError error) {
  if (closed_) return;
  H3CDN_EXPECTS(error != ConnectionError::None);
  stats_.error = error;
  obs::count(error == ConnectionError::HandshakeTimeout ? "transport.deaths.handshake_timeout"
             : error == ConnectionError::Refused        ? "transport.deaths.refused"
             : error == ConnectionError::Killed         ? "transport.deaths.killed"
                                                        : "transport.deaths.blackhole");
  if (trace_) {
    trace::Event ev{sim_.now(), trace::EventType::ConnectionAborted};
    ev.fault = error == ConnectionError::HandshakeTimeout ? trace::FaultKind::HandshakeTimeout
               : error == ConnectionError::Refused        ? trace::FaultKind::Refused
               : error == ConnectionError::Killed         ? trace::FaultKind::Outage
                                                          : trace::FaultKind::Blackhole;
    trace_->record(ev);
  }
  close();
  if (on_dead_) {
    // Move out first: the callback may drop its owning session, and with it
    // this connection's last reference.
    auto cb = std::move(on_dead_);
    on_dead_ = nullptr;
    cb(error, sim_.now());
  }
}

void Connection::close() {
  if (closed_) return;
  // Record any flow-control stall still open at teardown before events stop.
  close_fc_stall(Dir::Up);
  close_fc_stall(Dir::Down);
  closed_ = true;
  if (admitted_ && config_.connection_release) {
    admitted_ = false;  // release the server concurrency slot exactly once
    config_.connection_release();
  }
  for (auto& dptr : dirs_) {
    if (dptr->rto_timer != 0) sim_.cancel(dptr->rto_timer);
    dptr->rto_timer = 0;
  }
  if (hs_timer_ != 0) sim_.cancel(hs_timer_);
  hs_timer_ = 0;
  ++hs_generation_;
}

}  // namespace h3cdn::transport
