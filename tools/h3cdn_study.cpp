// h3cdn_study — command-line driver for the measurement study.
//
// Runs a configurable study and prints any of the paper's tables/figures as
// text, CSV, or a JSON summary.
//
//   h3cdn_study [options]
//     --sites N          number of websites (default 325)
//     --probes N         probes per vantage point (default 1)
//     --loss RATE        injected loss, e.g. 0.01 (default 0)
//     --consecutive      keep session tickets across pages (Fig. 8/Table III)
//     --seed N           study seed (default 7)
//     --jobs N           worker threads for shard execution (default: all
//                        hardware threads; output is byte-identical for any N)
//     --experiment NAME  table1|table2|table3|fig2..fig9|dissection|summary|all
//                        (default all; dissection = critical-path PLT
//                        attribution of the H2-vs-H3 delta) — plus `load`,
//                        the fleet-scale capacity sweep, `chaos`, the
//                        scripted fault-scenario suite with invariant
//                        checking, `clusters`, workload-archetype
//                        discovery over the attribution vectors, and
//                        `topology`, the multi-hop path-plan sweep with
//                        per-hop PLT attribution (none of the four is part
//                        of `all`; see docs/LOAD.md, docs/RESILIENCE.md,
//                        docs/OBSERVABILITY.md, docs/TOPOLOGY.md)
//     --link-profile P   last-mile preset for every vantage (wired|cellular)
//     --no-resilience    run the chaos suite with the resilience engine off
//     --load-rates LIST  comma-separated offered rates, pages/sec (open
//                        loop) or users (closed loop); default 2,8,32
//     --load-window SEC  arrival window in seconds (default 10)
//     --load-arrival K   fixed|poisson|ramp|closed (default poisson)
//     --plans LIST       topology: comma-separated PathPlans to sweep
//                        (hyphen-joined h2/h3 hop tokens; default
//                        h3-h3,h3-h2,h2-h3; direct baselines are appended)
//     --topo-loss LIST   topology: comma-separated loss rates (default 0,0.01)
//     --shards N         split each page's CDN resources across N sharded
//                        hostnames per domain (H1-era domain sharding; 1 =
//                        off, byte-identical to the unsharded workload)
//     --format FMT       text|csv (default text; summary is always JSON)
//     --out PATH         write to a file instead of stdout
//     --obs DIR          record run-wide observability artifacts into DIR
//                        (metrics.{json,csv,prom}, qlog.json, waterfalls.json,
//                        profile.json — inspect with h3cdn_obs_report)
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/clusters.h"
#include "core/export.h"
#include "core/observability.h"
#include "core/report.h"
#include "core/topology_study.h"
#include "load/chaos.h"
#include "load/study.h"
#include "net/link_profile.h"
#include "web/workload_io.h"

using namespace h3cdn;

namespace {

struct Options {
  core::StudyConfig study;
  std::string experiment = "all";
  std::string format = "text";
  std::string out_path;
  std::string workload_in;   // load pages from a workload JSON file
  std::string workload_out;  // dump the generated workload and exit
  std::string obs_dir;       // write observability artifacts here
  // --experiment load knobs.
  std::vector<double> load_rates = {2.0, 8.0, 32.0};
  double load_window_s = 10.0;
  load::ArrivalKind load_arrival = load::ArrivalKind::Poisson;
  std::size_t fleet_sample = 0;      // coreset target per cell; 0 = full run
  bool fleet_sample_verify = false;  // also run full, check the p95 rank-CI
  std::vector<load::LinkMixEntry> link_mix;  // heterogeneous access links
  bool sites_set = false;  // load defaults to a small rotation unless --sites
  bool no_resilience = false;  // chaos: disable the engine under test
  // --experiment topology knobs.
  std::vector<std::string> topo_plans = {"h3-h3", "h3-h2", "h2-h3"};
  std::vector<double> topo_loss = {0.0, 0.01};
  // --experiment clusters knobs.
  std::string cluster_algo = "dbscan";  // dbscan|kmeans
  double cluster_eps = 0.0;             // 0 = auto (median k-dist)
  std::size_t cluster_min_pts = 4;
  std::size_t cluster_k_min = 2;  // kmeans silhouette sweep range
  std::size_t cluster_k_max = 6;
  bool cluster_qoe = false;    // append QoE ratio features
  bool cluster_no_ab = false;  // skip the selector A/B replay
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--sites N] [--probes N] [--loss RATE] [--consecutive] [--seed N] [--jobs N]\n"
               "       [--experiment table1|table2|table3|fig2|...|fig9|dissection|summary|load|chaos|clusters|topology|all]\n"
               "       [--plans P1,P2,...] [--topo-loss R1,R2,...] [--shards N]\n"
               "       [--load-rates R1,R2,...] [--load-window SEC] [--load-arrival fixed|poisson|ramp|closed]\n"
               "       [--fleet-sample N] [--fleet-sample-verify] [--link-mix NAME:W,NAME:W,...]\n"
               "       [--link-profile wired|cellular] [--no-resilience]\n"
               "       [--cluster-algo dbscan|kmeans] [--cluster-eps E] [--cluster-min-pts N]\n"
               "       [--cluster-k-min K] [--cluster-k-max K] [--cluster-qoe] [--cluster-no-ab]\n"
               "       [--format text|csv] [--out PATH] [--obs DIR]\n"
               "       [--workload-in FILE.json] [--workload-out FILE.json]\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  o.study.workload.site_count = 325;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--sites") {
      o.study.max_sites = static_cast<std::size_t>(std::stoul(next()));
      o.sites_set = true;
    } else if (arg == "--probes") {
      o.study.probes_per_vantage = std::stoi(next());
    } else if (arg == "--loss") {
      o.study.loss_rate = std::stod(next());
    } else if (arg == "--consecutive") {
      o.study.consecutive = true;
    } else if (arg == "--seed") {
      o.study.seed = std::stoull(next());
    } else if (arg == "--jobs") {
      o.study.jobs = std::stoi(next());
      if (o.study.jobs < 0) usage(argv[0]);
    } else if (arg == "--experiment") {
      o.experiment = next();
    } else if (arg == "--load-rates") {
      o.load_rates.clear();
      std::stringstream list(next());
      std::string item;
      while (std::getline(list, item, ',')) {
        if (!item.empty()) o.load_rates.push_back(std::stod(item));
      }
      if (o.load_rates.empty()) usage(argv[0]);
    } else if (arg == "--load-window") {
      o.load_window_s = std::stod(next());
      if (o.load_window_s <= 0) usage(argv[0]);
    } else if (arg == "--load-arrival") {
      bool ok = true;
      o.load_arrival = load::arrival_kind_from_string(next(), &ok);
      if (!ok) usage(argv[0]);
    } else if (arg == "--plans") {
      o.topo_plans.clear();
      std::stringstream list(next());
      std::string item;
      while (std::getline(list, item, ',')) {
        if (item.empty()) continue;
        if (!topology::PathPlan::parse(item)) usage(argv[0]);
        o.topo_plans.push_back(item);
      }
      if (o.topo_plans.empty()) usage(argv[0]);
    } else if (arg == "--topo-loss") {
      o.topo_loss.clear();
      std::stringstream list(next());
      std::string item;
      while (std::getline(list, item, ',')) {
        if (!item.empty()) o.topo_loss.push_back(std::stod(item));
      }
      if (o.topo_loss.empty()) usage(argv[0]);
    } else if (arg == "--shards") {
      o.study.workload.domain_shards = static_cast<std::size_t>(std::stoul(next()));
      if (o.study.workload.domain_shards < 1) usage(argv[0]);
    } else if (arg == "--fleet-sample") {
      o.fleet_sample = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--fleet-sample-verify") {
      o.fleet_sample_verify = true;
    } else if (arg == "--link-mix") {
      // NAME:WEIGHT pairs, e.g. wired:0.7,cellular:0.3
      std::stringstream list(next());
      std::string item;
      while (std::getline(list, item, ',')) {
        if (item.empty()) continue;
        const std::size_t colon = item.find(':');
        load::LinkMixEntry entry;
        entry.profile = item.substr(0, colon);
        if (colon != std::string::npos) entry.weight = std::stod(item.substr(colon + 1));
        if (!net::LinkProfile::from_name(entry.profile) || entry.weight <= 0) {
          usage(argv[0]);
        }
        o.link_mix.push_back(entry);
      }
      if (o.link_mix.empty()) usage(argv[0]);
    } else if (arg == "--link-profile") {
      o.study.link_profile = next();
      if (!net::LinkProfile::from_name(o.study.link_profile)) usage(argv[0]);
    } else if (arg == "--no-resilience") {
      o.no_resilience = true;
    } else if (arg == "--cluster-algo") {
      o.cluster_algo = next();
      if (o.cluster_algo != "dbscan" && o.cluster_algo != "kmeans") usage(argv[0]);
    } else if (arg == "--cluster-eps") {
      o.cluster_eps = std::stod(next());
      if (o.cluster_eps < 0) usage(argv[0]);
    } else if (arg == "--cluster-min-pts") {
      o.cluster_min_pts = static_cast<std::size_t>(std::stoul(next()));
      if (o.cluster_min_pts < 1) usage(argv[0]);
    } else if (arg == "--cluster-k-min") {
      o.cluster_k_min = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--cluster-k-max") {
      o.cluster_k_max = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--cluster-qoe") {
      o.cluster_qoe = true;
    } else if (arg == "--cluster-no-ab") {
      o.cluster_no_ab = true;
    } else if (arg == "--format") {
      o.format = next();
    } else if (arg == "--out") {
      o.out_path = next();
    } else if (arg == "--workload-in") {
      o.workload_in = next();
    } else if (arg == "--workload-out") {
      o.workload_out = next();
    } else if (arg == "--obs") {
      o.obs_dir = next();
    } else {
      usage(argv[0]);
    }
  }
  return o;
}

bool wants(const Options& o, const char* name) {
  return o.experiment == "all" || o.experiment == name;
}

// Returns a process exit status: nonzero when a chaos invariant failed.
int emit(const Options& o, std::ostream& os) {
  const bool csv = o.format == "csv";

  // The chaos suite drives scripted fault scenarios through the resilience
  // engine and checks run invariants per cell (docs/RESILIENCE.md). Not part
  // of "all"; a violated invariant fails the invocation (CI smoke hooks this).
  if (o.experiment == "chaos") {
    core::ChaosConfig cfg;
    cfg.workload = o.study.workload;
    if (o.sites_set) cfg.sites = o.study.max_sites;
    cfg.seed = o.study.seed;
    cfg.jobs = o.study.jobs;
    cfg.resilience.enabled = !o.no_resilience;
    if (!o.study.link_profile.empty()) {
      const auto profile = net::LinkProfile::from_name(o.study.link_profile);
      browser::apply_link_profile(cfg.vantage, *profile);
    }
    const core::ChaosResult result = core::run_chaos(cfg, o.study.observability);
    if (csv) {
      os << core::chaos_result_to_csv(result);
    } else {
      core::print_chaos_result(os, result);
    }
    if (!result.all_passed()) {
      std::cerr << "chaos: invariant violations detected\n";
      return 1;
    }
    return 0;
  }

  // The load sweep is its own experiment (and deliberately not part of
  // "all": it measures a loaded fleet, not the paper's idle-edge probes).
  if (o.experiment == "load") {
    load::LoadStudyConfig cfg;
    cfg.workload = o.study.workload;
    if (o.sites_set) cfg.sites = o.study.max_sites;
    cfg.seed = o.study.seed;
    cfg.jobs = o.study.jobs;
    cfg.arrival = o.load_arrival;
    cfg.offered_rates = o.load_rates;
    cfg.window = from_ms(o.load_window_s * 1000.0);
    cfg.link_mix = o.link_mix;
    cfg.sampling.target = o.fleet_sample;
    const load::LoadResult result = load::run_load_study(cfg, o.study.observability);
    if (csv) {
      os << load::load_result_to_csv(result);
    } else {
      load::print_load_result(os, result);
    }
    if (o.fleet_sample_verify) {
      if (o.fleet_sample == 0) {
        std::cerr << "--fleet-sample-verify requires --fleet-sample N\n";
        return 2;
      }
      // Re-run the identical sweep with sampling off; the sampled run's p95
      // rank-CI must cover every full-population cell.
      load::LoadStudyConfig full_cfg = cfg;
      full_cfg.sampling.target = 0;
      const load::LoadResult full = load::run_load_study(full_cfg, nullptr);
      if (!load::verify_sampling_accuracy(result, full, std::cerr)) {
        std::cerr << "fleet-sample: full-population p95 outside the reported bound\n";
        return 1;
      }
    }
    return 0;
  }
  // The multi-hop topology sweep (docs/TOPOLOGY.md): chained relay paths with
  // per-hop protocol choice, reported as end-to-end + per-hop PLT dissections.
  // Not part of "all"; a violated additivity invariant fails the invocation.
  if (o.experiment == "topology") {
    core::TopologyConfig cfg;
    cfg.workload = o.study.workload;
    if (o.sites_set) cfg.sites = o.study.max_sites;
    cfg.plans = o.topo_plans;
    cfg.loss_rates = o.topo_loss;
    cfg.seed = o.study.seed;
    cfg.jobs = o.study.jobs;
    if (!o.study.link_profile.empty()) {
      const auto profile = net::LinkProfile::from_name(o.study.link_profile);
      browser::apply_link_profile(cfg.vantage, *profile);
    }
    const core::TopologyResult result = core::run_topology(cfg, o.study.observability);
    if (csv) {
      os << core::topology_result_to_csv(result);
    } else {
      core::print_topology_result(os, result);
    }
    if (!result.all_passed()) {
      std::cerr << "topology: per-hop attribution invariant violations detected\n";
      return 1;
    }
    return 0;
  }

  const bool needs_consecutive =
      wants(o, "fig8") || wants(o, "table3") || o.experiment == "all";

  if (wants(o, "table1")) {
    if (csv) {
      os << "provider,release_year\n";
      for (const auto& r : core::compute_table1()) os << r.provider << ',' << r.release_year << '\n';
    } else {
      core::print_table1(os, core::compute_table1());
    }
  }

  // Everything below needs a study run.
  const bool needs_standard = wants(o, "table2") || wants(o, "fig2") || wants(o, "fig3") ||
                              wants(o, "fig4") || wants(o, "fig5") || wants(o, "fig6") ||
                              wants(o, "fig7") || wants(o, "dissection") || wants(o, "summary");
  std::shared_ptr<const web::Workload> external;
  if (!o.workload_in.empty()) {
    std::ifstream file(o.workload_in);
    if (!file) {
      std::cerr << "cannot open " << o.workload_in << "\n";
      std::exit(1);
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    web::WorkloadIoError werr;
    auto loaded = web::workload_from_json(buffer.str(), &werr);
    if (!loaded) {
      std::cerr << "workload load failed: " << werr.message << "\n";
      std::exit(1);
    }
    external = std::make_shared<web::Workload>(std::move(*loaded));
  }

  // Workload-archetype discovery (docs/OBSERVABILITY.md "Archetypes & QoE").
  // Not part of "all": it runs its own standard study, clusters the per-pair
  // attribution vectors, replays the selector A/B, and — when --obs is set —
  // writes the clusters.json artifact next to the other run artifacts.
  if (o.experiment == "clusters") {
    core::StudyConfig cfg = o.study;
    cfg.consecutive = false;
    const core::StudyResult study = external ? core::MeasurementStudy(cfg).run(external)
                                             : core::MeasurementStudy(cfg).run();
    core::ClustersConfig ccfg;
    ccfg.archetype.algo = o.cluster_algo == "kmeans" ? analysis::ArchetypeAlgo::KMeans
                                                     : analysis::ArchetypeAlgo::Dbscan;
    ccfg.archetype.dbscan.eps = o.cluster_eps;
    ccfg.archetype.dbscan.min_pts = o.cluster_min_pts;
    ccfg.archetype.k_min = o.cluster_k_min;
    ccfg.archetype.k_max = o.cluster_k_max;
    ccfg.archetype.seed = o.study.seed;
    ccfg.include_qoe = o.cluster_qoe;
    ccfg.run_ab = !o.cluster_no_ab;
    const core::ClustersResult result = core::compute_clusters(study, ccfg);
    if (csv) {
      os << core::clusters_to_csv(result);
    } else {
      core::print_clusters(os, result);
    }
    if (!o.obs_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(o.obs_dir, ec);
      const std::string path = o.obs_dir + "/clusters.json";
      std::ofstream file(path);
      if (!file) {
        std::cerr << "cannot open " << path << " for writing\n";
        return 1;
      }
      file << core::clusters_to_json(result) << '\n';
      std::cerr << "wrote " << result.archetypes.size() << " archetype(s) over "
                << result.pages.size() << " pages to " << path << "\n";
    }
    return 0;
  }

  std::optional<core::StudyResult> standard;
  if (needs_standard) {
    core::StudyConfig cfg = o.study;
    cfg.consecutive = false;
    standard = external ? core::MeasurementStudy(cfg).run(external)
                        : core::MeasurementStudy(cfg).run();
  }
  std::optional<core::StudyResult> consecutive;
  if (needs_consecutive && (wants(o, "fig8") || wants(o, "table3"))) {
    core::StudyConfig cfg = o.study;
    cfg.consecutive = true;
    auto workload = standard ? standard->workload
                             : std::shared_ptr<const web::Workload>(external);
    consecutive = workload ? core::MeasurementStudy(cfg).run(workload)
                           : core::MeasurementStudy(cfg).run();
  }

  auto text_or_csv = [&](const char* name, auto compute, auto print, auto to_csv) {
    if (!wants(o, name)) return;
    const auto result = compute();
    if (csv) {
      os << to_csv(result);
    } else {
      print(os, result);
    }
  };

  if (standard) {
    const auto& study = *standard;
    text_or_csv(
        "table2", [&] { return core::compute_table2(study); },
        [](std::ostream& s, const auto& r) { core::print_table2(s, r); }, core::table2_to_csv);
    text_or_csv(
        "fig2", [&] { return core::compute_fig2(study); },
        [](std::ostream& s, const auto& r) { core::print_fig2(s, r); }, core::fig2_to_csv);
    text_or_csv(
        "fig3", [&] { return core::compute_fig3(study); },
        [](std::ostream& s, const auto& r) { core::print_fig3(s, r); }, core::fig3_to_csv);
    text_or_csv(
        "fig4", [&] { return core::compute_fig4(study); },
        [](std::ostream& s, const auto& r) { core::print_fig4(s, r); }, core::fig4_to_csv);
    text_or_csv(
        "fig5", [&] { return core::compute_fig5(study); },
        [](std::ostream& s, const auto& r) { core::print_fig5(s, r); }, core::fig5_to_csv);
    text_or_csv(
        "fig6", [&] { return core::compute_fig6(study); },
        [](std::ostream& s, const auto& r) { core::print_fig6(s, r); }, core::fig6_to_csv);
    text_or_csv(
        "fig7", [&] { return core::compute_fig7(study); },
        [](std::ostream& s, const auto& r) { core::print_fig7(s, r); }, core::fig7_to_csv);
    text_or_csv(
        "dissection", [&] { return core::compute_plt_dissection(study); },
        [](std::ostream& s, const auto& r) { core::print_plt_dissection(s, r); },
        core::dissection_to_csv);
    if (wants(o, "summary")) os << core::summary_to_json(study) << '\n';
  }

  if (consecutive) {
    const auto& study = *consecutive;
    text_or_csv(
        "fig8", [&] { return core::compute_fig8(study); },
        [](std::ostream& s, const auto& r) { core::print_fig8(s, r); }, core::fig8_to_csv);
    text_or_csv(
        "table3", [&] { return core::compute_table3(study); },
        [](std::ostream& s, const auto& r) { core::print_table3(s, r); }, core::table3_to_csv);
  }

  if (wants(o, "fig9")) {
    core::StudyConfig cfg = o.study;
    cfg.consecutive = false;
    const auto fig9 = core::compute_fig9(cfg, {0.0, 0.005, 0.01});
    if (csv) {
      os << core::fig9_to_csv(fig9);
    } else {
      core::print_fig9(os, fig9);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options o = parse(argc, argv);
  if (o.format != "text" && o.format != "csv") usage(argv[0]);

  // Every study run in this invocation shares one observability sink, so the
  // artifacts describe the invocation as a whole.
  std::optional<core::RunObservability> observability;
  if (!o.obs_dir.empty()) {
    observability.emplace();
    o.study.observability = &*observability;
  }
  auto flush_observability = [&]() -> int {
    if (!observability) return 0;
    std::string error;
    if (!observability->write_artifacts(o.obs_dir, &error)) {
      std::cerr << "observability export failed: " << error << "\n";
      return 1;
    }
    std::cerr << "wrote observability artifacts ("
              << observability->metrics().series_count() << " series, "
              << observability->traces().event_count() << " trace events, "
              << observability->waterfalls().size() << " waterfalls) to " << o.obs_dir << "\n";
    return 0;
  };

  if (!o.workload_out.empty()) {
    web::WorkloadConfig wcfg = o.study.workload;
    const auto workload = web::generate_workload(wcfg);
    std::ofstream file(o.workload_out);
    if (!file) {
      std::cerr << "cannot open " << o.workload_out << " for writing\n";
      return 1;
    }
    file << web::workload_to_json(workload);
    std::cerr << "wrote " << workload.sites.size() << " sites to " << o.workload_out << "\n";
    return 0;
  }

  if (o.out_path.empty()) {
    const int status = emit(o, std::cout);
    const int obs_status = flush_observability();
    return status != 0 ? status : obs_status;
  }
  std::ofstream file(o.out_path);
  if (!file) {
    std::cerr << "cannot open " << o.out_path << " for writing\n";
    return 1;
  }
  const int status = emit(o, file);
  const int obs_status = flush_observability();
  return status != 0 ? status : obs_status;
}
