// h3cdn_har_inspect — loads an exported HAR archive and prints a per-page
// digest: protocol mix, CDN attribution (via the LocEdge substitute), reuse
// statistics and the slowest entries. Also works on HAR files produced by
// other tools as long as they follow the HAR 1.2 layout.
//
//   h3cdn_har_inspect FILE.har [--top N]
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/page_metrics.h"
#include "browser/har_import.h"
#include "browser/waterfall.h"
#include "obs/critical_path.h"
#include "util/table.h"

using namespace h3cdn;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " FILE.har [--top N]\n";
    return 2;
  }
  std::size_t top = 10;
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--top") top = std::stoul(argv[i + 1]);
  }

  std::ifstream file(argv[1]);
  if (!file) {
    std::cerr << "cannot open " << argv[1] << '\n';
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  browser::HarImportError error;
  const auto page = browser::from_har_json(buffer.str(), &error);
  if (!page) {
    std::cerr << "failed to parse HAR: " << error.message << '\n';
    return 1;
  }

  const locedge::Classifier classifier;
  const auto metrics = analysis::compute_page_metrics(*page, classifier);

  std::cout << "page: " << page->site << "  (H3 browsing: " << (page->h3_enabled ? "on" : "off")
            << ")\n";
  std::cout << "onLoad: " << util::fmt(to_ms(page->page_load_time), 1) << " ms, "
            << page->entries.size() << " entries, " << page->connections_created
            << " connections (" << page->resumed_connections << " resumed, "
            << page->zero_rtt_connections << " 0-RTT)\n\n";

  util::AsciiTable mix({"scope", "h2", "h3", "http/1.x", "reused entries"});
  mix.add_row({"all", std::to_string(metrics.h2_entries), std::to_string(metrics.h3_entries),
               std::to_string(metrics.other_entries), std::to_string(metrics.reused_connections)});
  mix.add_row({"cdn", std::to_string(metrics.h2_cdn_entries),
               std::to_string(metrics.h3_cdn_entries), std::to_string(metrics.other_cdn_entries),
               ""});
  std::cout << mix.to_string();

  std::cout << "\nCDN share: " << util::fmt_pct(metrics.cdn_fraction()) << " across "
            << metrics.provider_count() << " providers:";
  for (const auto& [provider, count] : metrics.provider_counts) {
    std::cout << ' ' << cdn::to_string(provider) << '(' << count << ')';
  }
  std::cout << "\n\nslowest entries:\n";

  auto entries = page->entries;
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    return a.timings.total() > b.timings.total();
  });
  util::AsciiTable t({"total ms", "connect", "wait", "receive", "proto", "domain"});
  for (std::size_t i = 0; i < std::min(top, entries.size()); ++i) {
    const auto& e = entries[i];
    t.add_row({util::fmt(to_ms(e.timings.total()), 1), util::fmt(to_ms(e.timings.connect), 1),
               util::fmt(to_ms(e.timings.wait), 1), util::fmt(to_ms(e.timings.receive), 1),
               http::to_string(e.timings.version), e.domain});
  }
  std::cout << t.to_string();

  // Critical-path attribution: imported pages carry _initiatorId edges, so
  // the walk follows the real dependency DAG (foreign HARs without the field
  // fall back to start-time ordering inside make_waterfall).
  const auto waterfall = browser::make_waterfall(*page);
  const auto cp = obs::analyze_critical_path(waterfall);
  const bool has_edges =
      std::any_of(page->entries.begin(), page->entries.end(),
                  [](const auto& e) { return e.initiator_id >= 0; });
  std::cout << "\ncritical path (" << (has_edges ? "initiator DAG" : "start-time fallback")
            << ", " << cp.path.size() << " hops, PLT " << util::fmt(cp.plt_ms, 1) << " ms):\n";
  util::AsciiTable phases({"phase", "ms", "share"});
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    const auto p = static_cast<obs::Phase>(i);
    if (cp.phases[p] == 0.0) continue;
    phases.add_row({obs::to_string(p), util::fmt(cp.phases[p], 1),
                    util::fmt_pct(cp.plt_ms > 0 ? cp.phases[p] / cp.plt_ms : 0.0)});
  }
  std::cout << phases.to_string();
  return 0;
}
