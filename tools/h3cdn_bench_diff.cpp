// h3cdn_bench_diff — compares two directories of schema-v1 BENCH_*.json
// records (as written by the bench binaries into $H3CDN_BENCH_OUT) and exits
// non-zero when any metric moved beyond the noise band. CI wires this after
// the bench-trajectory step so simulation-output regressions fail the build.
//
//   h3cdn_bench_diff BASE_DIR CURRENT_DIR [--noise FRAC] [--abs-floor X]
//                    [--allow-config-mismatch] [--include-wall]
//
// Exit codes: 0 clean, 1 regression (or config mismatch), 2 usage/IO error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_diff.h"
#include "util/table.h"

using namespace h3cdn;

namespace {

std::vector<obs::BenchRecordInfo> load_dir(const std::filesystem::path& dir, bool* ok) {
  *ok = true;
  std::vector<obs::BenchRecordInfo> records;
  if (!std::filesystem::is_directory(dir)) {
    std::cerr << "not a directory: " << dir << '\n';
    *ok = false;
    return records;
  }
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
        name.size() > 5 && name.substr(name.size() - 5) == ".json") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& file : files) {
    std::ifstream in(file);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    auto record = obs::parse_bench_record(buffer.str(), &error);
    if (!record) {
      std::cerr << file << ": " << error << '\n';
      *ok = false;
      continue;
    }
    records.push_back(std::move(*record));
  }
  return records;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: " << argv[0]
              << " BASE_DIR CURRENT_DIR [--noise FRAC] [--abs-floor X]"
                 " [--allow-config-mismatch] [--include-wall]\n";
    return 2;
  }
  obs::BenchDiffOptions options;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--noise" && i + 1 < argc) {
      options.noise_frac = std::stod(argv[++i]);
    } else if (arg == "--abs-floor" && i + 1 < argc) {
      options.abs_floor = std::stod(argv[++i]);
    } else if (arg == "--allow-config-mismatch") {
      options.require_matching_config = false;
    } else if (arg == "--include-wall") {
      options.skip_wall_metrics = false;
    } else {
      std::cerr << "unknown option: " << arg << '\n';
      return 2;
    }
  }

  bool base_ok = false;
  bool cur_ok = false;
  const auto base = load_dir(argv[1], &base_ok);
  const auto current = load_dir(argv[2], &cur_ok);
  if (!base_ok || !cur_ok) return 2;
  if (base.empty()) {
    std::cerr << "no BENCH_*.json records in " << argv[1] << '\n';
    return 2;
  }

  const auto report = obs::diff_bench_records(base, current, options);

  std::cout << "compared " << report.benches_compared << " benches, "
            << report.deltas.size() << " metrics (noise band "
            << util::fmt_pct(options.noise_frac) << ")\n";
  for (const auto& note : report.skipped) std::cout << "  skip: " << note << '\n';
  for (const auto& bench : report.config_mismatches) {
    std::cout << "  config hash mismatch: " << bench << '\n';
  }

  util::AsciiTable t({"bench", "metric", "base", "current", "change", "verdict"});
  for (const auto& d : report.deltas) {
    if (!d.flagged && std::abs(d.rel_change) <= options.noise_frac / 2) continue;
    t.add_row({d.bench, d.metric, util::fmt(d.base, 3), util::fmt(d.current, 3),
               util::fmt_pct(d.rel_change), d.flagged ? "REGRESSION" : "ok"});
  }
  std::cout << t.to_string();

  if (!report.clean(options)) {
    std::cout << "FAIL: " << report.flagged_count() << " metric(s) beyond noise band";
    if (!report.config_mismatches.empty()) {
      std::cout << ", " << report.config_mismatches.size() << " config mismatch(es)";
    }
    std::cout << '\n';
    return 1;
  }
  std::cout << "OK: all metrics within noise band\n";
  return 0;
}
