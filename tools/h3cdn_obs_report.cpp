// h3cdn_obs_report — inspect and validate an observability artifact directory
// written by core::RunObservability::write_artifacts (metrics.json/.csv/.prom,
// qlog.json, waterfalls.json, attribution.json, profile.json,
// timeline.{json,csv}, slo.json, trace.perfetto.json, fault_recovery.json).
//
//   h3cdn_obs_report DIR                 human-readable run summary
//   h3cdn_obs_report DIR --attribution   critical-path PLT breakdown (ASCII
//                                        bars; add --json for the JSON form)
//   h3cdn_obs_report DIR --timeline      sim-time sparklines per series, with
//                                        fault/detection/recovery markers
//   h3cdn_obs_report DIR --archetypes    workload-archetype table from
//                                        clusters.json (--experiment clusters);
//                                        with --check, validates the clustering
//                                        invariants instead of rendering
//   h3cdn_obs_report DIR --check         validate artifacts; exit 1 on failure
//     --waterfalls N    number of page waterfalls to render (default 3)
//     --width N         waterfall terminal width (default 100)
//     --min-series N    --check: minimum distinct metric series (default 30)
//     --min-layers N    --check: minimum distinct layer prefixes (default 6)
//     --slo-strict      --check: a breached SLO or burn alert fails the check
//                       (default: slo.json is validated for consistency and
//                       summarized, but chaos runs are allowed to breach)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/attribution.h"
#include "obs/critical_path.h"
#include "obs/waterfall.h"
#include "util/json_parse.h"

using namespace h3cdn;

namespace {

struct Options {
  std::string dir;
  bool check = false;
  bool attribution = false;
  bool timeline = false;
  bool archetypes = false;
  bool json = false;
  bool slo_strict = false;
  std::size_t waterfalls = 3;
  std::size_t width = 100;
  std::size_t min_series = 30;
  std::size_t min_layers = 6;
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " DIR [--check [--slo-strict]] [--attribution [--json]] [--timeline]\n"
               "       [--archetypes]\n"
               "       [--waterfalls N] [--width N] [--min-series N] [--min-layers N]\n";
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--check") {
      o.check = true;
    } else if (arg == "--attribution") {
      o.attribution = true;
    } else if (arg == "--timeline") {
      o.timeline = true;
    } else if (arg == "--archetypes") {
      o.archetypes = true;
    } else if (arg == "--slo-strict") {
      o.slo_strict = true;
    } else if (arg == "--json") {
      o.json = true;
    } else if (arg == "--waterfalls") {
      o.waterfalls = std::stoul(next());
    } else if (arg == "--width") {
      o.width = std::stoul(next());
    } else if (arg == "--min-series") {
      o.min_series = std::stoul(next());
    } else if (arg == "--min-layers") {
      o.min_layers = std::stoul(next());
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else if (o.dir.empty()) {
      o.dir = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (o.dir.empty()) usage(argv[0]);
  return o;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

/// Collects validation failures; empty == pass.
struct Checker {
  std::vector<std::string> problems;
  void fail(std::string what) { problems.push_back(std::move(what)); }
};

/// Loads `name` from the artifact dir and parses it as JSON. Returns nullopt
/// (recording the failure) when the file is missing or malformed.
std::optional<util::JsonValue> load_json(const Options& o, const char* name, Checker& check) {
  const std::string path = o.dir + "/" + name;
  const auto text = read_file(path);
  if (!text) {
    check.fail(std::string(name) + ": cannot read " + path);
    return std::nullopt;
  }
  util::JsonParseError error;
  auto doc = util::parse_json(*text, &error);
  if (!doc) {
    check.fail(std::string(name) + ": JSON parse error at byte " + std::to_string(error.offset) +
               ": " + error.message);
    return std::nullopt;
  }
  return doc;
}

std::string layer_of(const std::string& series) {
  const auto dot = series.find('.');
  return dot == std::string::npos ? series : series.substr(0, dot);
}

// --- metrics.json -----------------------------------------------------------

void check_metrics(const util::JsonValue& doc, const Options& o, Checker& check,
                   std::set<std::string>* layers_out) {
  if (!doc.is_object()) {
    check.fail("metrics.json: top level is not an object");
    return;
  }
  std::size_t series = 0;
  std::set<std::string> layers;
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const util::JsonValue* group = doc.find(section);
    if (group == nullptr || !group->is_object()) {
      check.fail(std::string("metrics.json: missing object \"") + section + "\"");
      continue;
    }
    const bool is_hist = std::string(section) == "histograms";
    for (const auto& [name, value] : group->as_object()) {
      ++series;
      layers.insert(layer_of(name));
      if (is_hist && value.is_object()) {
        // An empty histogram must export count only — quantiles computed from
        // zero samples would be fabricated data (and 0-filled ones poison
        // downstream aggregation).
        const double count = value.number_or("count", 0.0);
        if (count == 0.0) {
          for (const char* q : {"mean", "min", "max", "sum", "p50", "p90", "p99"}) {
            if (value.find(q) != nullptr) {
              check.fail("metrics.json: histogram \"" + name + "\" has count=0 but carries \"" +
                         q + "\" (quantiles without samples)");
              break;
            }
          }
        }
      }
    }
  }
  const double declared = doc.number_or("series_count", -1.0);
  if (declared != static_cast<double>(series)) {
    check.fail("metrics.json: series_count=" + std::to_string(declared) +
               " disagrees with actual " + std::to_string(series));
  }
  if (series < o.min_series) {
    check.fail("metrics.json: only " + std::to_string(series) + " series (need >= " +
               std::to_string(o.min_series) + ")");
  }
  if (layers.size() < o.min_layers) {
    std::string got;
    for (const auto& l : layers) got += (got.empty() ? "" : ",") + l;
    check.fail("metrics.json: only " + std::to_string(layers.size()) + " layer prefixes [" + got +
               "] (need >= " + std::to_string(o.min_layers) + ")");
  }
  if (layers_out) *layers_out = std::move(layers);
}

// --- resilience counters ----------------------------------------------------

/// Cross-counter accounting for the resilience engine (docs/RESILIENCE.md).
/// Only runs when the artifact carries any `resilience.*` series, so legacy
/// artifacts (engine disabled) pass unchanged. The directions below are the
/// ones that hold for ANY artifact, including runs where a page deadline
/// abandoned in-flight work:
///   * settled hedges (won + lost + cancelled) never exceed launched hedges;
///   * a Range resumption only ever happens on a retry;
///   * entries can only settle through a primary or a hedge dispatch;
///   * breaker transitions chain closed <= half_opened <= opened.
void check_resilience(const util::JsonValue& doc, Checker& check) {
  const util::JsonValue* counters = doc.find("counters");
  if (counters == nullptr || !counters->is_object()) return;  // reported by check_metrics
  bool any = false;
  for (const auto& [name, value] : counters->as_object()) {
    (void)value;
    if (name.rfind("resilience.", 0) == 0) {
      any = true;
      break;
    }
  }
  if (!any) return;
  auto c = [&](const char* name) { return counters->number_or(name, 0.0); };

  const double launched = c("resilience.hedges_launched");
  const double settled = c("resilience.hedges_won") + c("resilience.hedges_lost") +
                         c("resilience.hedges_cancelled");
  if (settled > launched) {
    check.fail("metrics.json: resilience hedge accounting: " + std::to_string(settled) +
               " settles (won+lost+cancelled) exceed " + std::to_string(launched) +
               " launches (a hedge settled twice)");
  }
  if (c("resilience.resumed_requests") > c("resilience.retries")) {
    check.fail("metrics.json: resilience.resumed_requests=" +
               std::to_string(c("resilience.resumed_requests")) + " exceeds resilience.retries=" +
               std::to_string(c("resilience.retries")) + " (resumption without a retry)");
  }
  const double submitted = c("http.entries_submitted");
  const double finished = c("http.entries_completed") + c("http.entries_failed");
  if (finished > submitted + launched) {
    check.fail("metrics.json: entry conservation: completed+failed=" + std::to_string(finished) +
               " exceeds submitted+hedges_launched=" + std::to_string(submitted + launched));
  }
  const double opened = c("resilience.breaker.opened");
  const double half_opened = c("resilience.breaker.half_opened");
  const double closed = c("resilience.breaker.closed");
  if (half_opened > opened || closed > half_opened) {
    check.fail("metrics.json: breaker transition chain violated: opened=" +
               std::to_string(opened) + " half_opened=" + std::to_string(half_opened) +
               " closed=" + std::to_string(closed) + " (need closed <= half_opened <= opened)");
  }
}

// --- waterfalls.json --------------------------------------------------------

obs::WaterfallEntry entry_from_json(const util::JsonValue& e) {
  obs::WaterfallEntry out;
  out.url = e.string_or("url", "");
  out.domain = e.string_or("domain", "");
  out.type = e.string_or("type", "");
  out.protocol = e.string_or("protocol", "");
  out.connection_id = static_cast<std::uint64_t>(e.number_or("connection_id", 0));
  out.attempts = static_cast<int>(e.number_or("attempts", 1));
  out.from_cache = e.bool_or("from_cache", false);
  out.reused_connection = e.bool_or("reused_connection", false);
  out.resumed = e.bool_or("resumed", false);
  out.failed = e.bool_or("failed", false);
  out.start_ms = e.number_or("start_ms", 0.0);
  out.resource_id = static_cast<std::int64_t>(e.number_or("resource_id", -1));
  out.initiator_index = static_cast<std::int64_t>(e.number_or("initiator_index", -1));
  if (const util::JsonValue* stalls = e.find("stalls_ms"); stalls != nullptr) {
    out.hol_stall_ms = stalls->number_or("hol_stall", 0.0);
    out.retx_wait_ms = stalls->number_or("retx_wait", 0.0);
  }
  if (const util::JsonValue* phases = e.find("phases_ms"); phases != nullptr) {
    out.dns_ms = phases->number_or("dns", 0.0);
    out.blocked_ms = phases->number_or("blocked", 0.0);
    out.connect_ms = phases->number_or("connect", 0.0);
    out.send_ms = phases->number_or("send", 0.0);
    out.wait_ms = phases->number_or("wait", 0.0);
    out.receive_ms = phases->number_or("receive", 0.0);
  }
  out.response_bytes = static_cast<std::uint64_t>(e.number_or("response_bytes", 0));
  out.annotation = e.string_or("annotation", "");
  if (const util::JsonValue* hops = e.find("upstream_hops"); hops != nullptr && hops->is_array()) {
    for (const auto& h : hops->as_array()) {
      obs::UpstreamHop hop;
      hop.tier = h.string_or("tier", "");
      hop.protocol = h.string_or("protocol", "");
      hop.cache_hit = h.bool_or("cache_hit", false);
      hop.reused_connection = h.bool_or("reused_connection", false);
      hop.resumed = h.bool_or("resumed", false);
      hop.failed = h.bool_or("failed", false);
      if (const util::JsonValue* phases = h.find("phases_ms"); phases != nullptr) {
        hop.dns_ms = phases->number_or("dns", 0.0);
        hop.blocked_ms = phases->number_or("blocked", 0.0);
        hop.connect_ms = phases->number_or("connect", 0.0);
        hop.send_ms = phases->number_or("send", 0.0);
        hop.wait_ms = phases->number_or("wait", 0.0);
        hop.receive_ms = phases->number_or("receive", 0.0);
      }
      if (const util::JsonValue* stalls = h.find("stalls_ms"); stalls != nullptr) {
        hop.hol_stall_ms = stalls->number_or("hol_stall", 0.0);
        hop.retx_wait_ms = stalls->number_or("retx_wait", 0.0);
      }
      out.upstream_hops.push_back(std::move(hop));
    }
  }
  return out;
}

obs::Waterfall waterfall_from_json(const util::JsonValue& w) {
  obs::Waterfall out;
  out.site = w.string_or("site", "");
  out.vantage = w.string_or("vantage", "");
  out.h3_enabled = w.bool_or("h3_enabled", false);
  out.page_load_time_ms = w.number_or("page_load_time_ms", 0.0);
  if (const util::JsonValue* pool = w.find("pool"); pool != nullptr) {
    out.connections_created = static_cast<std::uint64_t>(pool->number_or("connections_created", 0));
    out.connection_deaths = static_cast<std::uint64_t>(pool->number_or("connection_deaths", 0));
    out.h3_fallbacks = static_cast<std::uint64_t>(pool->number_or("h3_fallbacks", 0));
    out.requests_rescued = static_cast<std::uint64_t>(pool->number_or("requests_rescued", 0));
    out.requests_failed = static_cast<std::uint64_t>(pool->number_or("requests_failed", 0));
  }
  if (const util::JsonValue* entries = w.find("entries"); entries && entries->is_array()) {
    for (const auto& e : entries->as_array()) out.entries.push_back(entry_from_json(e));
  }
  return out;
}

std::vector<obs::Waterfall> waterfalls_from_json(const util::JsonValue& doc, Checker& check) {
  std::vector<obs::Waterfall> out;
  const util::JsonValue* list = doc.find("waterfalls");
  if (list == nullptr || !list->is_array()) {
    check.fail("waterfalls.json: missing \"waterfalls\" array");
    return out;
  }
  out.reserve(list->as_array().size());
  for (const auto& w : list->as_array()) out.push_back(waterfall_from_json(w));
  return out;
}

void check_waterfalls(const util::JsonValue& doc, Checker& check) {
  const util::JsonValue* list = doc.find("waterfalls");
  if (list == nullptr || !list->is_array()) return;  // reported by the loader
  std::size_t index = 0;
  for (const auto& w : list->as_array()) {
    const util::JsonValue* entries = w.find("entries");
    if (entries == nullptr || !entries->is_array()) {
      check.fail("waterfalls.json: page " + std::to_string(index) + " has no entries array");
      ++index;
      continue;
    }
    std::size_t ei = 0;
    for (const auto& e : entries->as_array()) {
      // Core invariant: the exported total equals the phase sum, so any
      // downstream consumer can decompose a bar without residual slack.
      const obs::WaterfallEntry entry = entry_from_json(e);
      const double declared = e.number_or("total_ms", -1.0);
      if (std::fabs(declared - entry.total_ms()) > 1e-6) {
        check.fail("waterfalls.json: page " + std::to_string(index) + " entry " +
                   std::to_string(ei) + " (" + entry.url + "): phases sum to " +
                   std::to_string(entry.total_ms()) + " ms but total_ms=" +
                   std::to_string(declared));
      }
      // Chained entries repeat the contract per relay hop: each exported
      // hop's total equals its own phase sum.
      if (const util::JsonValue* hops = e.find("upstream_hops");
          hops != nullptr && hops->is_array()) {
        std::size_t hi = 0;
        for (const auto& h : hops->as_array()) {
          if (hi >= entry.upstream_hops.size()) break;
          const obs::UpstreamHop& hop = entry.upstream_hops[hi];
          const double hop_declared = h.number_or("total_ms", -1.0);
          if (std::fabs(hop_declared - hop.total_ms()) > 1e-6) {
            check.fail("waterfalls.json: page " + std::to_string(index) + " entry " +
                       std::to_string(ei) + " hop " + std::to_string(hi) + " (" + hop.tier +
                       "): hop phases sum to " + std::to_string(hop.total_ms()) +
                       " ms but total_ms=" + std::to_string(hop_declared));
          }
          ++hi;
        }
      }
      ++ei;
    }
    ++index;
  }
}

// --- per-hop attribution (multi-hop topology, docs/TOPOLOGY.md) -------------

/// Recomputes the critical-path dissection from the waterfall artifact and
/// validates the per-hop contract: for every page whose entries carry
/// upstream_hops, the hop-sliced phase vectors must re-aggregate to the
/// end-to-end dissection phase-for-phase within 1 µs, and the end-to-end
/// dissection itself must still sum to the PLT.
void check_hop_attribution(const std::vector<obs::Waterfall>& pages, Checker& check) {
  std::size_t chained_pages = 0;
  for (std::size_t i = 0; i < pages.size(); ++i) {
    bool chained = false;
    for (const auto& e : pages[i].entries) chained |= !e.upstream_hops.empty();
    if (!chained) continue;
    ++chained_pages;
    const obs::CriticalPathResult cp = obs::analyze_critical_path(pages[i]);
    const std::string where =
        "waterfalls.json: page " + std::to_string(i) + " (" + pages[i].site + ")";
    if (std::fabs(cp.phases.sum() - cp.plt_ms) > 1e-3) {
      check.fail(where + ": chained dissection sums to " + std::to_string(cp.phases.sum()) +
                 " ms but PLT is " + std::to_string(cp.plt_ms));
    }
    if (cp.by_hop.empty()) continue;  // chain never on the critical path
    obs::PhaseVector reagg;
    for (const auto& hop : cp.by_hop) reagg += hop;
    for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
      const double residual_us = std::fabs(reagg.ms[p] - cp.phases.ms[p]) * 1e3;
      if (residual_us > 1.0) {
        check.fail(where + ": hop slices of phase " + std::to_string(p) + " re-aggregate to " +
                   std::to_string(reagg.ms[p]) + " ms but the e2e dissection carries " +
                   std::to_string(cp.phases.ms[p]) + " ms (residual " +
                   std::to_string(residual_us) + " us > 1)");
        break;
      }
    }
  }
  (void)chained_pages;
}

// --- attribution.json -------------------------------------------------------

/// The attribution engine's contract is exact additivity: every phase vector
/// tiles [0, PLT] with no residual, so the exported phases must sum to the
/// exported PLT within 1 µs (and diff deltas to the PLT delta within 2 µs —
/// one rounding grain per side of the subtraction).
void check_attribution(const util::JsonValue& doc, Checker& check) {
  const util::JsonValue* root = doc.find("attribution");
  if (root == nullptr || !root->is_object()) {
    check.fail("attribution.json: missing \"attribution\" object");
    return;
  }
  auto sum_phases = [&](const util::JsonValue& obj, const char* key, const std::string& where,
                        double* out) {
    const util::JsonValue* phases = obj.find(key);
    if (phases == nullptr || !phases->is_object()) {
      check.fail("attribution.json: " + where + " has no \"" + key + "\" object");
      return false;
    }
    double sum = 0.0;
    std::size_t keys = 0;
    for (const auto& [name, v] : phases->as_object()) {
      (void)name;
      sum += v.is_number() ? v.as_number() : 0.0;
      ++keys;
    }
    if (keys != obs::kPhaseCount) {
      check.fail("attribution.json: " + where + " \"" + key + "\" has " + std::to_string(keys) +
                 " phases (expected " + std::to_string(obs::kPhaseCount) + ")");
    }
    *out = sum;
    return true;
  };
  const util::JsonValue* pages = root->find("pages");
  if (pages == nullptr || !pages->is_array()) {
    check.fail("attribution.json: missing \"pages\" array");
  } else {
    std::size_t i = 0;
    for (const auto& p : pages->as_array()) {
      const std::string where = "page " + std::to_string(i) + " (" + p.string_or("site", "?") + ")";
      double sum = 0.0;
      if (sum_phases(p, "phases_ms", where, &sum)) {
        const double plt = p.number_or("plt_ms", -1.0);
        if (std::fabs(sum - plt) > 1e-3) {  // 1 µs, in ms
          check.fail("attribution.json: " + where + ": phases sum to " + std::to_string(sum) +
                     " ms but plt_ms=" + std::to_string(plt));
        }
      }
      ++i;
    }
  }
  const util::JsonValue* diffs = root->find("diffs");
  if (diffs != nullptr && diffs->is_array()) {
    std::size_t i = 0;
    for (const auto& d : diffs->as_array()) {
      const std::string where = "diff " + std::to_string(i) + " (" + d.string_or("site", "?") + ")";
      double sum = 0.0;
      if (sum_phases(d, "delta_ms", where, &sum)) {
        const double delta = d.number_or("plt_delta_ms", -1.0);
        if (std::fabs(sum - delta) > 2e-3) {
          check.fail("attribution.json: " + where + ": deltas sum to " + std::to_string(sum) +
                     " ms but plt_delta_ms=" + std::to_string(delta));
        }
      }
      ++i;
    }
  }
}

// --- qlog.json --------------------------------------------------------------

void check_qlog(const util::JsonValue& doc, Checker& check, std::size_t* events_out) {
  if (doc.string_or("qlog_format", "") != "JSON") {
    check.fail("qlog.json: qlog_format != \"JSON\"");
  }
  if (doc.string_or("qlog_version", "").empty()) {
    check.fail("qlog.json: missing qlog_version");
  }
  const util::JsonValue* traces = doc.find("traces");
  if (traces == nullptr || !traces->is_array()) {
    check.fail("qlog.json: missing \"traces\" array");
    return;
  }
  std::size_t events = 0;
  std::size_t index = 0;
  for (const auto& t : traces->as_array()) {
    const util::JsonValue* common = t.find("common_fields");
    if (common == nullptr || common->string_or("ODCID", "").empty()) {
      check.fail("qlog.json: trace " + std::to_string(index) + " has no common_fields.ODCID");
    }
    const util::JsonValue* trace_events = t.find("events");
    if (trace_events == nullptr || !trace_events->is_array()) {
      check.fail("qlog.json: trace " + std::to_string(index) + " has no events array");
      ++index;
      continue;
    }
    double last = -1.0;
    for (const auto& e : trace_events->as_array()) {
      ++events;
      const double at = e.number_or("time", -1.0);
      if (at < last) {
        check.fail("qlog.json: trace " + std::to_string(index) +
                   " events are not time-ordered (" + std::to_string(at) + " after " +
                   std::to_string(last) + ")");
        break;
      }
      last = at;
      if (e.string_or("name", "").empty()) {
        check.fail("qlog.json: trace " + std::to_string(index) + " has an unnamed event");
        break;
      }
    }
    ++index;
  }
  if (events_out) *events_out = events;
}

// --- timeline.json ----------------------------------------------------------

/// The timeline export contract: a positive bucket width, every series DENSE
/// over [0, span_buckets) with window starts at exact bucket multiples, and
/// the PR 4 empty-window convention — a window with count == 0 carries no
/// value or quantile fields (they would be fabricated data).
void check_timeline(const util::JsonValue& doc, Checker& check) {
  const double bucket_ms = doc.number_or("bucket_ms", 0.0);
  if (bucket_ms <= 0.0) {
    check.fail("timeline.json: bucket_ms=" + std::to_string(bucket_ms) + " (need > 0)");
    return;
  }
  const double span = doc.number_or("span_buckets", -1.0);
  const util::JsonValue* series = doc.find("series");
  if (series == nullptr || !series->is_object()) {
    check.fail("timeline.json: missing \"series\" object");
    return;
  }
  if (doc.number_or("series_count", -1.0) !=
      static_cast<double>(series->as_object().size())) {
    check.fail("timeline.json: series_count disagrees with the series object");
  }
  for (const auto& [name, s] : series->as_object()) {
    const std::string kind = s.string_or("kind", "");
    if (kind != "counter" && kind != "gauge" && kind != "histogram") {
      check.fail("timeline.json: series \"" + name + "\" has unknown kind \"" + kind + "\"");
      continue;
    }
    const util::JsonValue* points = s.find("points");
    if (points == nullptr || !points->is_array()) {
      check.fail("timeline.json: series \"" + name + "\" has no points array");
      continue;
    }
    if (static_cast<double>(points->as_array().size()) != span) {
      check.fail("timeline.json: series \"" + name + "\" has " +
                 std::to_string(points->as_array().size()) + " points (span_buckets=" +
                 std::to_string(span) + "; every series must be dense)");
      continue;
    }
    std::size_t w = 0;
    for (const auto& pt : points->as_array()) {
      const double t = pt.number_or("t_ms", -1.0);
      if (std::fabs(t - static_cast<double>(w) * bucket_ms) > 1e-6) {
        check.fail("timeline.json: series \"" + name + "\" window " + std::to_string(w) +
                   " starts at " + std::to_string(t) + " ms (expected " +
                   std::to_string(static_cast<double>(w) * bucket_ms) + ")");
        break;
      }
      if (pt.number_or("count", -1.0) == 0.0) {
        for (const char* field : {"value", "sum", "mean", "min", "max", "p50", "p90", "p99"}) {
          if (pt.find(field) != nullptr) {
            check.fail("timeline.json: series \"" + name + "\" window " + std::to_string(w) +
                       " is empty (count=0) but carries \"" + field + "\"");
            break;
          }
        }
      }
      ++w;
    }
  }
}

// --- slo.json ---------------------------------------------------------------

/// Internal consistency of every objective verdict; with --slo-strict a
/// breached objective or burn alert also fails the check.
void check_slo(const util::JsonValue& doc, const Options& o, Checker& check) {
  const util::JsonValue* objectives = doc.find("objectives");
  if (objectives == nullptr || !objectives->is_array()) {
    check.fail("slo.json: missing \"objectives\" array");
    return;
  }
  for (const auto& obj : objectives->as_array()) {
    const std::string name = obj.string_or("name", "?");
    const double windows = obj.number_or("windows", 0.0);
    const double empty = obj.number_or("empty_windows", 0.0);
    const double bad = obj.number_or("bad_windows", 0.0);
    if (empty > windows || bad > windows - empty) {
      check.fail("slo.json: objective \"" + name + "\" window accounting broken: windows=" +
                 std::to_string(windows) + " empty=" + std::to_string(empty) + " bad=" +
                 std::to_string(bad));
    }
    const bool breached = obj.bool_or("breached", false);
    const bool burn_alert = obj.bool_or("burn_alert", false);
    const bool passed = obj.bool_or("passed", false);
    if (passed == (breached || burn_alert)) {
      check.fail("slo.json: objective \"" + name + "\": passed=" +
                 std::string(passed ? "true" : "false") + " contradicts breached/burn_alert");
    }
    if (obj.bool_or("no_data", false) && (breached || burn_alert)) {
      check.fail("slo.json: objective \"" + name + "\" has no_data yet a verdict");
    }
    if (o.slo_strict && !passed) {
      check.fail("slo.json [--slo-strict]: objective \"" + name + "\" failed (" +
                 std::string(breached ? "budget breached" : "burn alert") + ", bad_fraction=" +
                 std::to_string(obj.number_or("bad_fraction", 0.0)) + ")");
    }
  }
}

void print_slo(std::ostream& os, const util::JsonValue& doc) {
  const util::JsonValue* objectives = doc.find("objectives");
  if (objectives == nullptr || !objectives->is_array()) return;
  os << "--- SLO objectives ---\n";
  char line[256];
  std::snprintf(line, sizeof line, "%-28s %8s %8s %8s %12s %10s %8s\n", "objective", "windows",
                "empty", "bad", "bad_frac", "max_burn", "verdict");
  os << line;
  for (const auto& obj : objectives->as_array()) {
    const char* verdict = obj.bool_or("no_data", false)    ? "no-data"
                          : obj.bool_or("passed", false)   ? "pass"
                          : obj.bool_or("breached", false) ? "BREACH"
                                                           : "BURN";
    std::snprintf(line, sizeof line, "%-28s %8.0f %8.0f %8.0f %12.3f %10.2f %8s\n",
                  obj.string_or("name", "?").c_str(), obj.number_or("windows", 0.0),
                  obj.number_or("empty_windows", 0.0), obj.number_or("bad_windows", 0.0),
                  obj.number_or("bad_fraction", 0.0), obj.number_or("max_long_burn", 0.0),
                  verdict);
    os << line;
  }
}

// --- fault_recovery.json ----------------------------------------------------

/// The MTTR contract (docs/OBSERVABILITY.md): every scenario reports a FINITE
/// mttr_ms >= 0 consistent with its scripted fault window — detection never
/// precedes the fault start by more than one bucket, recovery never precedes
/// detection, degraded windows exist exactly when a detection time does, and
/// mttr_ms == max(0, recovery_ms - fault_start_ms) for degraded cells.
void check_fault_recovery(const util::JsonValue& doc, Checker& check) {
  const double bucket_ms = doc.number_or("bucket_ms", 0.0);
  const util::JsonValue* annotations = doc.find("annotations");
  if (annotations == nullptr || !annotations->is_array()) {
    check.fail("fault_recovery.json: missing \"annotations\" array");
    return;
  }
  if (annotations->as_array().empty()) {
    check.fail("fault_recovery.json: annotations array is empty");
  }
  for (const auto& a : annotations->as_array()) {
    const std::string name = a.string_or("scenario", "?");
    const double mttr = a.number_or("mttr_ms", -1.0);
    if (!std::isfinite(mttr) || mttr < 0.0) {
      check.fail("fault_recovery.json: scenario \"" + name + "\" mttr_ms=" +
                 std::to_string(mttr) + " (must be finite and >= 0)");
      continue;
    }
    const double detection = a.number_or("detection_ms", -1.0);
    const double recovery = a.number_or("recovery_ms", -1.0);
    const double degraded = a.number_or("degraded_windows", 0.0);
    const double fault_start = a.number_or("fault_start_ms", 0.0);
    if ((degraded > 0.0) != (detection >= 0.0)) {
      check.fail("fault_recovery.json: scenario \"" + name + "\": degraded_windows=" +
                 std::to_string(degraded) + " contradicts detection_ms=" +
                 std::to_string(detection));
    }
    if (detection >= 0.0) {
      if (recovery < detection) {
        check.fail("fault_recovery.json: scenario \"" + name + "\": recovery_ms=" +
                   std::to_string(recovery) + " precedes detection_ms=" +
                   std::to_string(detection));
      }
      const double expected = std::max(0.0, recovery - fault_start);
      if (std::fabs(mttr - expected) > 1e-6) {
        check.fail("fault_recovery.json: scenario \"" + name + "\": mttr_ms=" +
                   std::to_string(mttr) + " inconsistent with recovery - fault_start = " +
                   std::to_string(expected));
      }
      if (a.bool_or("faulted", false) && detection + bucket_ms < fault_start) {
        check.fail("fault_recovery.json: scenario \"" + name + "\": detection_ms=" +
                   std::to_string(detection) + " precedes the scripted fault start " +
                   std::to_string(fault_start) + " by more than one bucket");
      }
    } else if (mttr != 0.0) {
      check.fail("fault_recovery.json: scenario \"" + name +
                 "\": no degraded window but mttr_ms=" + std::to_string(mttr) + " != 0");
    }
  }
}

// --- clusters.json (--archetypes) -------------------------------------------

/// The clustering contract (docs/OBSERVABILITY.md "Archetypes & QoE"):
/// assignments cover every page exactly once; every assignment points at an
/// exported archetype row whose `pages` equals its member count; centroid
/// phase shares sum to 1 +- 1e-9; each centroid is the mean of its members'
/// embedded feature vectors; the per-archetype H2/H3 phase diffs re-aggregate
/// (pages-weighted) to the global dissection row; and the A/B summary's delta
/// matches its own means.
void check_clusters(const util::JsonValue& doc, Checker& check) {
  const util::JsonValue* archetypes = doc.find("archetypes");
  const util::JsonValue* assignments = doc.find("assignments");
  const util::JsonValue* global = doc.find("global");
  if (archetypes == nullptr || !archetypes->is_array()) {
    check.fail("clusters.json: missing \"archetypes\" array");
    return;
  }
  if (assignments == nullptr || !assignments->is_array()) {
    check.fail("clusters.json: missing \"assignments\" array");
    return;
  }
  if (global == nullptr || !global->is_object()) {
    check.fail("clusters.json: missing \"global\" object");
    return;
  }

  // Coverage: every (vantage, probe, site) page appears exactly once and the
  // declared page count matches the assignment list.
  const std::size_t n = assignments->as_array().size();
  if (doc.number_or("pages", -1.0) != static_cast<double>(n)) {
    check.fail("clusters.json: pages=" + std::to_string(doc.number_or("pages", -1.0)) +
               " disagrees with " + std::to_string(n) + " assignments");
  }
  std::set<std::string> seen;
  std::map<long long, std::size_t> member_counts;
  std::map<long long, std::vector<double>> feature_sums;
  for (const auto& a : assignments->as_array()) {
    const std::string key = a.string_or("vantage", "?") + "/p" +
                            std::to_string(static_cast<long long>(a.number_or("probe", -1.0))) +
                            "/" + std::to_string(static_cast<long long>(a.number_or("site_index", -1.0)));
    if (!seen.insert(key).second) {
      check.fail("clusters.json: page " + key + " assigned more than once");
    }
    const long long id = static_cast<long long>(a.number_or("archetype", -999.0));
    ++member_counts[id];
    if (const util::JsonValue* features = a.find("features");
        features != nullptr && features->is_array()) {
      auto& sums = feature_sums[id];
      if (sums.size() < features->as_array().size()) {
        sums.resize(features->as_array().size(), 0.0);
      }
      std::size_t i = 0;
      for (const auto& f : features->as_array()) {
        sums[i++] += f.is_number() ? f.as_number() : 0.0;
      }
    }
  }

  auto centroid_of = [](const util::JsonValue& row) {
    std::vector<double> c;
    if (const util::JsonValue* arr = row.find("centroid"); arr != nullptr && arr->is_array()) {
      for (const auto& v : arr->as_array()) c.push_back(v.is_number() ? v.as_number() : 0.0);
    }
    return c;
  };
  // Only the first kPhaseCount dims are normalized shares; optional QoE
  // ratios appended behind --cluster-qoe ride after them unnormalized.
  auto check_share_sum = [&](const std::string& where, const std::vector<double>& c,
                             double pages) {
    if (pages <= 0.0 || c.size() < obs::kPhaseCount) return;
    double sum = 0.0;
    double mass = 0.0;
    for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
      sum += c[i];
      mass += std::fabs(c[i]);
    }
    if (mass == 0.0) return;  // degenerate all-zero rows are left unnormalized
    if (std::fabs(sum - 1.0) > 1e-9) {
      check.fail("clusters.json: " + where + " centroid shares sum to " + std::to_string(sum) +
                 " (need 1 +- 1e-9)");
    }
  };

  std::set<long long> row_ids;
  std::size_t pages_total = 0;
  for (const auto& row : archetypes->as_array()) {
    const long long id = static_cast<long long>(row.number_or("id", -999.0));
    const std::string where =
        "archetype " + std::to_string(id) + " (" + row.string_or("name", "?") + ")";
    if (!row_ids.insert(id).second) {
      check.fail("clusters.json: duplicate archetype id " + std::to_string(id));
      continue;
    }
    const double pages = row.number_or("pages", -1.0);
    if (pages > 0.0) pages_total += static_cast<std::size_t>(pages);
    const auto mc = member_counts.find(id);
    const double assigned = mc == member_counts.end() ? 0.0 : static_cast<double>(mc->second);
    if (pages != assigned) {
      check.fail("clusters.json: " + where + " declares pages=" + std::to_string(pages) +
                 " but " + std::to_string(assigned) + " assignments point at it");
    }
    const auto c = centroid_of(row);
    check_share_sum(where, c, pages);
    if (const auto fs = feature_sums.find(id); fs != feature_sums.end() && pages > 0.0) {
      if (fs->second.size() != c.size()) {
        check.fail("clusters.json: " + where + " centroid has " + std::to_string(c.size()) +
                   " dims but member features have " + std::to_string(fs->second.size()));
      } else {
        for (std::size_t i = 0; i < c.size(); ++i) {
          if (std::fabs(c[i] - fs->second[i] / pages) > 1e-9) {
            check.fail("clusters.json: " + where + " centroid dim " + std::to_string(i) + " is " +
                       std::to_string(c[i]) + " but its members' mean is " +
                       std::to_string(fs->second[i] / pages));
            break;
          }
        }
      }
    }
  }
  for (const auto& [id, count] : member_counts) {
    if (row_ids.find(id) == row_ids.end()) {
      check.fail("clusters.json: " + std::to_string(count) +
                 " assignments reference archetype " + std::to_string(id) +
                 " but no such row exists");
    }
  }
  if (pages_total != n) {
    check.fail("clusters.json: archetype rows cover " + std::to_string(pages_total) +
               " pages but there are " + std::to_string(n) + " assignments");
  }
  const double global_pages = global->number_or("pages", -1.0);
  if (global_pages != static_cast<double>(n)) {
    check.fail("clusters.json: global.pages=" + std::to_string(global_pages) +
               " disagrees with " + std::to_string(n) + " assignments");
  }
  check_share_sum("global", centroid_of(*global), global_pages);

  // Re-aggregation: the pages-weighted per-archetype phase diffs must equal
  // the global dissection (the archetype split loses no PLT-delta mass).
  const auto agg_tol = [](double want) { return 1e-6 * std::max(1.0, std::fabs(want)); };
  const util::JsonValue* global_delta = global->find("mean_delta_ms");
  if (global_delta == nullptr || !global_delta->is_object()) {
    check.fail("clusters.json: global row has no mean_delta_ms object");
  } else {
    for (const auto& [phase, gv] : global_delta->as_object()) {
      double sum = 0.0;
      for (const auto& row : archetypes->as_array()) {
        const util::JsonValue* d = row.find("mean_delta_ms");
        sum += row.number_or("pages", 0.0) * (d != nullptr ? d->number_or(phase.c_str(), 0.0) : 0.0);
      }
      const double want = global_pages * (gv.is_number() ? gv.as_number() : 0.0);
      if (std::fabs(sum - want) > agg_tol(want)) {
        check.fail("clusters.json: phase \"" + phase + "\" diffs re-aggregate to " +
                   std::to_string(sum) + " page-ms but the global dissection carries " +
                   std::to_string(want));
      }
    }
  }
  double plt_sum = 0.0;
  for (const auto& row : archetypes->as_array()) {
    plt_sum += row.number_or("pages", 0.0) * row.number_or("mean_plt_delta_ms", 0.0);
  }
  const double plt_want = global_pages * global->number_or("mean_plt_delta_ms", 0.0);
  if (std::fabs(plt_sum - plt_want) > agg_tol(plt_want)) {
    check.fail("clusters.json: PLT diffs re-aggregate to " + std::to_string(plt_sum) +
               " page-ms but the global dissection carries " + std::to_string(plt_want));
  }

  // A/B summary consistency (present whenever the sub-experiment ran).
  if (const util::JsonValue* ab = doc.find("ab"); ab != nullptr && ab->is_object()) {
    const double pairs = ab->number_or("pairs", 0.0);
    if (pairs > 0.0) {
      if (pairs != static_cast<double>(n)) {
        check.fail("clusters.json: ab.pairs=" + std::to_string(pairs) + " but " +
                   std::to_string(n) + " pages were clustered");
      }
      const double delta =
          ab->number_or("global_mean_plt_ms", 0.0) - ab->number_or("conditioned_mean_plt_ms", 0.0);
      if (std::fabs(delta - ab->number_or("mean_delta_ms", 0.0)) > 1e-6) {
        check.fail("clusters.json: ab.mean_delta_ms=" +
                   std::to_string(ab->number_or("mean_delta_ms", 0.0)) +
                   " disagrees with global - conditioned = " + std::to_string(delta));
      }
    }
  }
}

void print_archetypes(std::ostream& os, const util::JsonValue& doc) {
  os << "--- Workload archetypes ---\n";
  os << "algo " << doc.string_or("algo", "?");
  if (doc.string_or("algo", "") == "dbscan") {
    os << " (eps " << doc.number_or("eps_used", 0.0) << ")";
  } else {
    os << " (k " << doc.number_or("chosen_k", 0.0) << ", silhouette "
       << doc.number_or("silhouette", 0.0) << ")";
  }
  os << ": " << doc.number_or("cluster_count", 0.0) << " clusters over "
     << doc.number_or("pages", 0.0) << " pages\n";
  char line[256];
  std::snprintf(line, sizeof line, "%4s %-18s %6s %10s %10s %9s %10s %10s  %s\n", "id", "name",
                "pages", "h2 plt", "h3 plt", "dPLT", "h2 fcp", "h3 fcp", "dominant delta");
  os << line;
  const auto row_line = [&](const util::JsonValue& row) {
    std::string dominant = "-";
    if (const util::JsonValue* d = row.find("mean_delta_ms"); d != nullptr && d->is_object()) {
      double best = 0.0;
      for (const auto& [phase, v] : d->as_object()) {
        const double value = v.is_number() ? v.as_number() : 0.0;
        if (std::fabs(value) > std::fabs(best)) {
          best = value;
          dominant = phase;
        }
      }
      if (dominant != "-") {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%s %+.1f ms", dominant.c_str(), best);
        dominant = buf;
      }
    }
    std::snprintf(line, sizeof line, "%4.0f %-18s %6.0f %10.2f %10.2f %9.2f %10.2f %10.2f  %s\n",
                  row.number_or("id", -1.0), row.string_or("name", "?").c_str(),
                  row.number_or("pages", 0.0), row.number_or("mean_h2_plt_ms", 0.0),
                  row.number_or("mean_h3_plt_ms", 0.0), row.number_or("mean_plt_delta_ms", 0.0),
                  row.number_or("mean_h2_fcp_ms", 0.0), row.number_or("mean_h3_fcp_ms", 0.0),
                  dominant.c_str());
    os << line;
  };
  if (const util::JsonValue* global = doc.find("global"); global != nullptr && global->is_object()) {
    row_line(*global);
  }
  if (const util::JsonValue* rows = doc.find("archetypes"); rows != nullptr && rows->is_array()) {
    for (const auto& row : rows->as_array()) row_line(row);
  }
  if (const util::JsonValue* ab = doc.find("ab");
      ab != nullptr && ab->is_object() && ab->number_or("pairs", 0.0) > 0.0) {
    std::snprintf(line, sizeof line,
                  "\nSelector A/B over %.0f pairs: global %.2f ms, archetype-conditioned %.2f ms "
                  "(delta %+.2f ms, oracle %.2f ms)\n",
                  ab->number_or("pairs", 0.0), ab->number_or("global_mean_plt_ms", 0.0),
                  ab->number_or("conditioned_mean_plt_ms", 0.0), ab->number_or("mean_delta_ms", 0.0),
                  ab->number_or("oracle_mean_plt_ms", 0.0));
    os << line;
  }
}

// --- --timeline rendering ---------------------------------------------------

/// Ten-level ASCII sparkline of one window series, scaled to its own max.
std::string sparkline(const std::vector<double>& values) {
  static const char kGlyphs[] = " .:-=+*#%@";
  double max = 0.0;
  for (const double v : values) max = std::max(max, v);
  std::string out;
  out.reserve(values.size());
  for (const double v : values) {
    if (max <= 0.0 || v <= 0.0) {
      out += kGlyphs[0];
    } else {
      const int level = 1 + static_cast<int>(v / max * 8.999);
      out += kGlyphs[std::min(level, 9)];
    }
  }
  return out;
}

void print_timeline(std::ostream& os, const util::JsonValue& doc,
                    const util::JsonValue* fault_recovery) {
  const double bucket_ms = doc.number_or("bucket_ms", 0.0);
  const double span = doc.number_or("span_buckets", 0.0);
  const util::JsonValue* series = doc.find("series");
  os << "Timeline: bucket " << bucket_ms << " ms, " << span << " windows, "
     << doc.number_or("series_count", 0.0) << " series\n";
  if (series == nullptr || !series->is_object() || span <= 0.0) return;
  const std::size_t windows = static_cast<std::size_t>(span);

  char head[256];
  std::snprintf(head, sizeof head, "%-36s %9s  ", "series", "peak");
  os << head << "|0 ms ... " << (span * bucket_ms) << " ms|\n";
  for (const auto& [name, s] : series->as_object()) {
    const util::JsonValue* points = s.find("points");
    if (points == nullptr || !points->is_array()) continue;
    const std::string kind = s.string_or("kind", "");
    std::vector<double> values;
    values.reserve(windows);
    for (const auto& pt : points->as_array()) {
      // Counter: increments per window. Gauge: last value. Histogram: p99.
      if (kind == "gauge") {
        values.push_back(pt.number_or("value", 0.0));
      } else if (kind == "histogram") {
        values.push_back(pt.number_or("p99", 0.0));
      } else {
        values.push_back(pt.number_or("count", 0.0));
      }
    }
    double peak = 0.0;
    for (const double v : values) peak = std::max(peak, v);
    if (peak <= 0.0) continue;  // all-quiet series add nothing to the picture
    char line[512];
    std::snprintf(line, sizeof line, "%-36s %9.4g  ", name.c_str(), peak);
    os << line << sparkline(values) << "\n";
  }

  // Fault markers: one row per annotated scenario. F = scripted fault start,
  // D = first degraded window, R = recovery instant.
  if (fault_recovery == nullptr) return;
  const util::JsonValue* annotations = fault_recovery->find("annotations");
  if (annotations == nullptr || !annotations->is_array() || bucket_ms <= 0.0) return;
  os << "\nFault markers (F fault start, D detection, R recovery):\n";
  for (const auto& a : annotations->as_array()) {
    std::string row(windows, '.');
    const auto mark = [&](double at_ms, char glyph) {
      if (at_ms < 0.0) return;
      std::size_t w = static_cast<std::size_t>(at_ms / bucket_ms);
      if (w >= windows) w = windows - 1;
      row[w] = row[w] == '.' ? glyph : '*';  // '*' marks collisions
    };
    if (a.bool_or("faulted", false)) mark(a.number_or("fault_start_ms", -1.0), 'F');
    mark(a.number_or("detection_ms", -1.0), 'D');
    mark(a.number_or("recovery_ms", -1.0), 'R');
    char line[512];
    std::snprintf(line, sizeof line, "%-36s %9s  ", a.string_or("scenario", "?").c_str(),
                  (std::to_string(static_cast<long long>(a.number_or("mttr_ms", 0.0))) + "ms")
                      .c_str());
    os << line << row << "\n";
  }
}

// --- human-readable summary -------------------------------------------------

void print_metrics(std::ostream& os, const util::JsonValue& doc) {
  char line[256];
  if (const util::JsonValue* counters = doc.find("counters");
      counters != nullptr && counters->is_object()) {
    os << "--- Counters ---\n";
    for (const auto& [name, v] : counters->as_object()) {
      std::snprintf(line, sizeof line, "%-44s %14.0f\n", name.c_str(),
                    v.is_number() ? v.as_number() : 0.0);
      os << line;
    }
  }
  if (const util::JsonValue* gauges = doc.find("gauges");
      gauges != nullptr && gauges->is_object() && !gauges->as_object().empty()) {
    os << "\n--- Gauges ---\n";
    for (const auto& [name, v] : gauges->as_object()) {
      std::snprintf(line, sizeof line, "%-44s %14.3f\n", name.c_str(),
                    v.is_number() ? v.as_number() : 0.0);
      os << line;
    }
  }
  if (const util::JsonValue* hists = doc.find("histograms");
      hists != nullptr && hists->is_object()) {
    os << "\n--- Histograms ---\n";
    std::snprintf(line, sizeof line, "%-40s %8s %10s %10s %10s %10s %10s\n", "name", "count",
                  "mean", "p50", "p90", "p99", "max");
    os << line;
    for (const auto& [name, h] : hists->as_object()) {
      std::snprintf(line, sizeof line, "%-40s %8.0f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
                    name.c_str(), h.number_or("count", 0), h.number_or("mean", 0),
                    h.number_or("p50", 0), h.number_or("p90", 0), h.number_or("p99", 0),
                    h.number_or("max", 0));
      os << line;
    }
  }
}

void print_profile(std::ostream& os, const util::JsonValue& doc) {
  const util::JsonValue* phases = doc.find("phases");
  if (phases == nullptr || !phases->is_object() || phases->as_object().empty()) return;
  char line[256];
  os << "\n--- Wall-clock profile ---\n";
  std::snprintf(line, sizeof line, "%-28s %10s %12s %10s %10s\n", "phase", "calls", "total ms",
                "mean us", "max us");
  os << line;
  for (const auto& [name, p] : phases->as_object()) {
    std::snprintf(line, sizeof line, "%-28s %10.0f %12.2f %10.2f %10.2f\n", name.c_str(),
                  p.number_or("calls", 0), p.number_or("total_ms", 0), p.number_or("mean_us", 0),
                  p.number_or("max_us", 0));
    os << line;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);
  Checker check;

  if (o.archetypes) {
    // Archetype mode: clusters.json is written only by --experiment clusters,
    // so it is loaded and validated here rather than joining the default
    // artifact list (a plain --check on a non-clusters run stays unaffected).
    const auto clusters_doc = load_json(o, "clusters.json", check);
    if (clusters_doc) check_clusters(*clusters_doc, check);
    if (!check.problems.empty()) {
      for (const auto& p : check.problems) std::cerr << "FAIL: " << p << "\n";
      return 1;
    }
    if (o.check) {
      std::cout << "OK: clusters.json: " << clusters_doc->number_or("pages", 0.0)
                << " pages across " << clusters_doc->number_or("cluster_count", 0.0)
                << " archetypes (algo " << clusters_doc->string_or("algo", "?")
                << "); coverage, centroid, re-aggregation, and A/B invariants hold\n";
    } else {
      print_archetypes(std::cout, *clusters_doc);
    }
    return 0;
  }

  if (o.timeline && !o.check) {
    // Timeline mode: sparklines straight from the artifacts; the fault
    // markers only appear for runs (chaos) that wrote fault_recovery.json.
    const auto timeline_doc = load_json(o, "timeline.json", check);
    if (!timeline_doc) {
      for (const auto& p : check.problems) std::cerr << "FAIL: " << p << "\n";
      return 1;
    }
    std::optional<util::JsonValue> fault_doc;
    if (read_file(o.dir + "/fault_recovery.json")) {
      fault_doc = load_json(o, "fault_recovery.json", check);
    }
    print_timeline(std::cout, *timeline_doc, fault_doc ? &*fault_doc : nullptr);
    if (!check.problems.empty()) {
      for (const auto& p : check.problems) std::cerr << "FAIL: " << p << "\n";
      return 1;
    }
    return 0;
  }

  if (o.attribution && !o.check) {
    // Attribution mode: recompute the critical-path breakdown from the
    // waterfall artifact (the ground truth) and render it.
    const auto waterfalls_doc = load_json(o, "waterfalls.json", check);
    if (!waterfalls_doc) {
      for (const auto& p : check.problems) std::cerr << "FAIL: " << p << "\n";
      return 1;
    }
    const auto pages = waterfalls_from_json(*waterfalls_doc, check);
    const auto report = obs::attribute_pages(pages);
    if (o.json) {
      std::cout << obs::attribution_to_json(report);
    } else {
      std::cout << obs::attribution_to_ascii(report, o.width);
    }
    if (!check.problems.empty()) {
      for (const auto& p : check.problems) std::cerr << "FAIL: " << p << "\n";
      return 1;
    }
    return 0;
  }

  const auto metrics = load_json(o, "metrics.json", check);
  const auto waterfalls_doc = load_json(o, "waterfalls.json", check);
  const auto attribution_doc = load_json(o, "attribution.json", check);
  const auto qlog = load_json(o, "qlog.json", check);
  const auto profile = load_json(o, "profile.json", check);
  const auto timeline_doc = load_json(o, "timeline.json", check);
  const auto slo_doc = load_json(o, "slo.json", check);
  // fault_recovery.json only exists for runs with annotated fault scenarios
  // (the chaos harness); when present it must satisfy the MTTR contract.
  std::optional<util::JsonValue> fault_doc;
  if (read_file(o.dir + "/fault_recovery.json")) {
    fault_doc = load_json(o, "fault_recovery.json", check);
  }
  // The non-JSON exports only need to exist and be non-empty.
  for (const char* name : {"metrics.csv", "metrics.prom", "timeline.csv"}) {
    const auto text = read_file(o.dir + "/" + name);
    if (!text || text->empty()) check.fail(std::string(name) + ": missing or empty");
  }

  std::set<std::string> layers;
  std::size_t qlog_events = 0;
  if (metrics) check_metrics(*metrics, o, check, &layers);
  if (metrics) check_resilience(*metrics, check);
  if (waterfalls_doc) check_waterfalls(*waterfalls_doc, check);
  if (waterfalls_doc) {
    Checker ignored;  // structural problems already reported by check_waterfalls
    check_hop_attribution(waterfalls_from_json(*waterfalls_doc, ignored), check);
  }
  if (attribution_doc) check_attribution(*attribution_doc, check);
  if (qlog) check_qlog(*qlog, check, &qlog_events);
  if (timeline_doc) check_timeline(*timeline_doc, check);
  if (slo_doc) check_slo(*slo_doc, o, check);
  if (fault_doc) check_fault_recovery(*fault_doc, check);

  if (o.check) {
    if (slo_doc) print_slo(std::cout, *slo_doc);
    if (check.problems.empty()) {
      std::cout << "OK: " << (metrics ? metrics->number_or("series_count", 0) : 0)
                << " metric series across " << layers.size() << " layers, "
                << (timeline_doc ? timeline_doc->number_or("span_buckets", 0) : 0)
                << " timeline windows, " << qlog_events << " qlog events\n";
      return 0;
    }
    for (const auto& p : check.problems) std::cerr << "FAIL: " << p << "\n";
    return 1;
  }

  std::ostream& os = std::cout;
  os << "Observability report for " << o.dir << "\n\n";
  if (metrics) print_metrics(os, *metrics);
  if (slo_doc) {
    os << "\n";
    print_slo(os, *slo_doc);
  }
  if (profile) print_profile(os, *profile);

  if (waterfalls_doc) {
    Checker ignored;
    const auto pages = waterfalls_from_json(*waterfalls_doc, ignored);
    os << "\n--- Waterfalls (" << pages.size() << " pages";
    if (pages.size() > o.waterfalls) os << ", showing first " << o.waterfalls;
    os << ") ---\n";
    for (std::size_t i = 0; i < pages.size() && i < o.waterfalls; ++i) {
      os << "\n" << obs::waterfall_to_ascii(pages[i], o.width);
    }
  }
  if (qlog) {
    os << "\nqlog: " << qlog_events << " events across ";
    const util::JsonValue* traces = qlog->find("traces");
    os << (traces && traces->is_array() ? traces->as_array().size() : 0) << " traces\n";
  }

  if (!check.problems.empty()) {
    os << "\nWARNINGS:\n";
    for (const auto& p : check.problems) os << "  " << p << "\n";
    return 1;
  }
  return 0;
}
