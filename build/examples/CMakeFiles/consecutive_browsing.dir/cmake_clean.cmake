file(REMOVE_RECURSE
  "CMakeFiles/consecutive_browsing.dir/consecutive_browsing.cpp.o"
  "CMakeFiles/consecutive_browsing.dir/consecutive_browsing.cpp.o.d"
  "consecutive_browsing"
  "consecutive_browsing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consecutive_browsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
