# Empty dependencies file for consecutive_browsing.
# This may be replaced when dependencies are built.
