file(REMOVE_RECURSE
  "CMakeFiles/adaptive_protocol_selection.dir/adaptive_protocol_selection.cpp.o"
  "CMakeFiles/adaptive_protocol_selection.dir/adaptive_protocol_selection.cpp.o.d"
  "adaptive_protocol_selection"
  "adaptive_protocol_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_protocol_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
