
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/adaptive_protocol_selection.cpp" "examples/CMakeFiles/adaptive_protocol_selection.dir/adaptive_protocol_selection.cpp.o" "gcc" "examples/CMakeFiles/adaptive_protocol_selection.dir/adaptive_protocol_selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/h3cdn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/h3cdn_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/locedge/CMakeFiles/h3cdn_locedge.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/h3cdn_browser.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/h3cdn_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/h3cdn_web.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/h3cdn_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/h3cdn_http.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/h3cdn_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/h3cdn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/h3cdn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/h3cdn_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/h3cdn_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/h3cdn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
