# Empty dependencies file for adaptive_protocol_selection.
# This may be replaced when dependencies are built.
