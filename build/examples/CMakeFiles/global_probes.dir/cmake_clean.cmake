file(REMOVE_RECURSE
  "CMakeFiles/global_probes.dir/global_probes.cpp.o"
  "CMakeFiles/global_probes.dir/global_probes.cpp.o.d"
  "global_probes"
  "global_probes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_probes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
