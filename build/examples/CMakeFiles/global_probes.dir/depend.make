# Empty dependencies file for global_probes.
# This may be replaced when dependencies are built.
