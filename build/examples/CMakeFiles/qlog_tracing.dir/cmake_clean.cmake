file(REMOVE_RECURSE
  "CMakeFiles/qlog_tracing.dir/qlog_tracing.cpp.o"
  "CMakeFiles/qlog_tracing.dir/qlog_tracing.cpp.o.d"
  "qlog_tracing"
  "qlog_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qlog_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
