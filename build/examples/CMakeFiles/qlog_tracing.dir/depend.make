# Empty dependencies file for qlog_tracing.
# This may be replaced when dependencies are built.
