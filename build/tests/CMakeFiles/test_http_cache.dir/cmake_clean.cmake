file(REMOVE_RECURSE
  "CMakeFiles/test_http_cache.dir/test_http_cache.cpp.o"
  "CMakeFiles/test_http_cache.dir/test_http_cache.cpp.o.d"
  "test_http_cache"
  "test_http_cache.pdb"
  "test_http_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_http_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
