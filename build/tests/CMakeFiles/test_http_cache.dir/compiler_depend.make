# Empty compiler generated dependencies file for test_http_cache.
# This may be replaced when dependencies are built.
