# Empty dependencies file for test_connection_loss.
# This may be replaced when dependencies are built.
