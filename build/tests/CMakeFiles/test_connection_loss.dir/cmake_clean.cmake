file(REMOVE_RECURSE
  "CMakeFiles/test_connection_loss.dir/test_connection_loss.cpp.o"
  "CMakeFiles/test_connection_loss.dir/test_connection_loss.cpp.o.d"
  "test_connection_loss"
  "test_connection_loss.pdb"
  "test_connection_loss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_connection_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
