# Empty dependencies file for test_integration_extras.
# This may be replaced when dependencies are built.
