file(REMOVE_RECURSE
  "CMakeFiles/test_integration_extras.dir/test_integration_extras.cpp.o"
  "CMakeFiles/test_integration_extras.dir/test_integration_extras.cpp.o.d"
  "test_integration_extras"
  "test_integration_extras.pdb"
  "test_integration_extras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
