# Empty compiler generated dependencies file for test_locedge.
# This may be replaced when dependencies are built.
