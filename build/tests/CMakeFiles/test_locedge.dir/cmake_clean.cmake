file(REMOVE_RECURSE
  "CMakeFiles/test_locedge.dir/test_locedge.cpp.o"
  "CMakeFiles/test_locedge.dir/test_locedge.cpp.o.d"
  "test_locedge"
  "test_locedge.pdb"
  "test_locedge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_locedge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
