file(REMOVE_RECURSE
  "CMakeFiles/test_json_parse.dir/test_json_parse.cpp.o"
  "CMakeFiles/test_json_parse.dir/test_json_parse.cpp.o.d"
  "test_json_parse"
  "test_json_parse.pdb"
  "test_json_parse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_json_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
