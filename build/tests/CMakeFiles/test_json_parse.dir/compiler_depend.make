# Empty compiler generated dependencies file for test_json_parse.
# This may be replaced when dependencies are built.
