# Empty compiler generated dependencies file for test_har_import.
# This may be replaced when dependencies are built.
