file(REMOVE_RECURSE
  "CMakeFiles/test_har_import.dir/test_har_import.cpp.o"
  "CMakeFiles/test_har_import.dir/test_har_import.cpp.o.d"
  "test_har_import"
  "test_har_import.pdb"
  "test_har_import[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_har_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
