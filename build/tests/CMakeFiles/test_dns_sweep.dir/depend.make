# Empty dependencies file for test_dns_sweep.
# This may be replaced when dependencies are built.
