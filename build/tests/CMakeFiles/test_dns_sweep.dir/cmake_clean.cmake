file(REMOVE_RECURSE
  "CMakeFiles/test_dns_sweep.dir/test_dns_sweep.cpp.o"
  "CMakeFiles/test_dns_sweep.dir/test_dns_sweep.cpp.o.d"
  "test_dns_sweep"
  "test_dns_sweep.pdb"
  "test_dns_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dns_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
