# Empty compiler generated dependencies file for test_report_vantages.
# This may be replaced when dependencies are built.
