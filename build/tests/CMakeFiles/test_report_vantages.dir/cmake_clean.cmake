file(REMOVE_RECURSE
  "CMakeFiles/test_report_vantages.dir/test_report_vantages.cpp.o"
  "CMakeFiles/test_report_vantages.dir/test_report_vantages.cpp.o.d"
  "test_report_vantages"
  "test_report_vantages.pdb"
  "test_report_vantages[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_vantages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
