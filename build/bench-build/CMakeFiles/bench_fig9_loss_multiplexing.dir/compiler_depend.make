# Empty compiler generated dependencies file for bench_fig9_loss_multiplexing.
# This may be replaced when dependencies are built.
