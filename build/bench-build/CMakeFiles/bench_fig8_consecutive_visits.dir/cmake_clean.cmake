file(REMOVE_RECURSE
  "../bench/bench_fig8_consecutive_visits"
  "../bench/bench_fig8_consecutive_visits.pdb"
  "CMakeFiles/bench_fig8_consecutive_visits.dir/bench_fig8_consecutive_visits.cpp.o"
  "CMakeFiles/bench_fig8_consecutive_visits.dir/bench_fig8_consecutive_visits.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_consecutive_visits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
