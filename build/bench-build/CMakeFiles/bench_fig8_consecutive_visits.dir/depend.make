# Empty dependencies file for bench_fig8_consecutive_visits.
# This may be replaced when dependencies are built.
