# Empty compiler generated dependencies file for bench_fig3_cdn_share_ccdf.
# This may be replaced when dependencies are built.
