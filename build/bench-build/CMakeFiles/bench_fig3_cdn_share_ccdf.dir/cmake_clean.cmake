file(REMOVE_RECURSE
  "../bench/bench_fig3_cdn_share_ccdf"
  "../bench/bench_fig3_cdn_share_ccdf.pdb"
  "CMakeFiles/bench_fig3_cdn_share_ccdf.dir/bench_fig3_cdn_share_ccdf.cpp.o"
  "CMakeFiles/bench_fig3_cdn_share_ccdf.dir/bench_fig3_cdn_share_ccdf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cdn_share_ccdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
