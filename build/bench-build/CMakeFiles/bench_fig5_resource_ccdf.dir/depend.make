# Empty dependencies file for bench_fig5_resource_ccdf.
# This may be replaced when dependencies are built.
