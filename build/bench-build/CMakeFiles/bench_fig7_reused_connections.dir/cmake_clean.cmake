file(REMOVE_RECURSE
  "../bench/bench_fig7_reused_connections"
  "../bench/bench_fig7_reused_connections.pdb"
  "CMakeFiles/bench_fig7_reused_connections.dir/bench_fig7_reused_connections.cpp.o"
  "CMakeFiles/bench_fig7_reused_connections.dir/bench_fig7_reused_connections.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_reused_connections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
