# Empty compiler generated dependencies file for bench_fig7_reused_connections.
# This may be replaced when dependencies are built.
