file(REMOVE_RECURSE
  "../bench/bench_fig4_shared_providers"
  "../bench/bench_fig4_shared_providers.pdb"
  "CMakeFiles/bench_fig4_shared_providers.dir/bench_fig4_shared_providers.cpp.o"
  "CMakeFiles/bench_fig4_shared_providers.dir/bench_fig4_shared_providers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_shared_providers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
