# Empty dependencies file for bench_fig4_shared_providers.
# This may be replaced when dependencies are built.
