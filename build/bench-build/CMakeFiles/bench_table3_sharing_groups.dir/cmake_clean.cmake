file(REMOVE_RECURSE
  "../bench/bench_table3_sharing_groups"
  "../bench/bench_table3_sharing_groups.pdb"
  "CMakeFiles/bench_table3_sharing_groups.dir/bench_table3_sharing_groups.cpp.o"
  "CMakeFiles/bench_table3_sharing_groups.dir/bench_table3_sharing_groups.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_sharing_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
