# Empty compiler generated dependencies file for bench_table3_sharing_groups.
# This may be replaced when dependencies are built.
