file(REMOVE_RECURSE
  "../bench/bench_table1_adoption"
  "../bench/bench_table1_adoption.pdb"
  "CMakeFiles/bench_table1_adoption.dir/bench_table1_adoption.cpp.o"
  "CMakeFiles/bench_table1_adoption.dir/bench_table1_adoption.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_adoption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
