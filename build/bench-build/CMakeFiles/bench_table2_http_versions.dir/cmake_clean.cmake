file(REMOVE_RECURSE
  "../bench/bench_table2_http_versions"
  "../bench/bench_table2_http_versions.pdb"
  "CMakeFiles/bench_table2_http_versions.dir/bench_table2_http_versions.cpp.o"
  "CMakeFiles/bench_table2_http_versions.dir/bench_table2_http_versions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_http_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
