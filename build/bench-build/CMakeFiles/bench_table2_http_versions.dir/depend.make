# Empty dependencies file for bench_table2_http_versions.
# This may be replaced when dependencies are built.
