file(REMOVE_RECURSE
  "../bench/bench_fig2_provider_adoption"
  "../bench/bench_fig2_provider_adoption.pdb"
  "CMakeFiles/bench_fig2_provider_adoption.dir/bench_fig2_provider_adoption.cpp.o"
  "CMakeFiles/bench_fig2_provider_adoption.dir/bench_fig2_provider_adoption.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_provider_adoption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
