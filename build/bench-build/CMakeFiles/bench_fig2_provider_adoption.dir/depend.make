# Empty dependencies file for bench_fig2_provider_adoption.
# This may be replaced when dependencies are built.
