# Empty compiler generated dependencies file for bench_fig6_plt_reduction.
# This may be replaced when dependencies are built.
