file(REMOVE_RECURSE
  "libh3cdn_tls.a"
)
