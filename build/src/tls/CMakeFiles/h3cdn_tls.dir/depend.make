# Empty dependencies file for h3cdn_tls.
# This may be replaced when dependencies are built.
