file(REMOVE_RECURSE
  "CMakeFiles/h3cdn_tls.dir/handshake.cpp.o"
  "CMakeFiles/h3cdn_tls.dir/handshake.cpp.o.d"
  "CMakeFiles/h3cdn_tls.dir/ticket_store.cpp.o"
  "CMakeFiles/h3cdn_tls.dir/ticket_store.cpp.o.d"
  "libh3cdn_tls.a"
  "libh3cdn_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h3cdn_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
