# Empty compiler generated dependencies file for h3cdn_locedge.
# This may be replaced when dependencies are built.
