file(REMOVE_RECURSE
  "CMakeFiles/h3cdn_locedge.dir/classifier.cpp.o"
  "CMakeFiles/h3cdn_locedge.dir/classifier.cpp.o.d"
  "libh3cdn_locedge.a"
  "libh3cdn_locedge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h3cdn_locedge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
