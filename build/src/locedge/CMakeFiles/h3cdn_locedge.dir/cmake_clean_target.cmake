file(REMOVE_RECURSE
  "libh3cdn_locedge.a"
)
