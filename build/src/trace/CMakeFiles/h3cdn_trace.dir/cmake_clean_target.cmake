file(REMOVE_RECURSE
  "libh3cdn_trace.a"
)
