# Empty dependencies file for h3cdn_trace.
# This may be replaced when dependencies are built.
