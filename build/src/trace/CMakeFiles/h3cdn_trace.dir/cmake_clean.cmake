file(REMOVE_RECURSE
  "CMakeFiles/h3cdn_trace.dir/trace.cpp.o"
  "CMakeFiles/h3cdn_trace.dir/trace.cpp.o.d"
  "libh3cdn_trace.a"
  "libh3cdn_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h3cdn_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
