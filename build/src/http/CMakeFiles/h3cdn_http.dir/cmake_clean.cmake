file(REMOVE_RECURSE
  "CMakeFiles/h3cdn_http.dir/pool.cpp.o"
  "CMakeFiles/h3cdn_http.dir/pool.cpp.o.d"
  "CMakeFiles/h3cdn_http.dir/session.cpp.o"
  "CMakeFiles/h3cdn_http.dir/session.cpp.o.d"
  "CMakeFiles/h3cdn_http.dir/types.cpp.o"
  "CMakeFiles/h3cdn_http.dir/types.cpp.o.d"
  "libh3cdn_http.a"
  "libh3cdn_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h3cdn_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
