# Empty dependencies file for h3cdn_http.
# This may be replaced when dependencies are built.
