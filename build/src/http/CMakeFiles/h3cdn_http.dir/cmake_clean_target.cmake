file(REMOVE_RECURSE
  "libh3cdn_http.a"
)
