# Empty dependencies file for h3cdn_browser.
# This may be replaced when dependencies are built.
