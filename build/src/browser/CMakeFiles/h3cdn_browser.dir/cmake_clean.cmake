file(REMOVE_RECURSE
  "CMakeFiles/h3cdn_browser.dir/browser.cpp.o"
  "CMakeFiles/h3cdn_browser.dir/browser.cpp.o.d"
  "CMakeFiles/h3cdn_browser.dir/environment.cpp.o"
  "CMakeFiles/h3cdn_browser.dir/environment.cpp.o.d"
  "CMakeFiles/h3cdn_browser.dir/har.cpp.o"
  "CMakeFiles/h3cdn_browser.dir/har.cpp.o.d"
  "CMakeFiles/h3cdn_browser.dir/har_import.cpp.o"
  "CMakeFiles/h3cdn_browser.dir/har_import.cpp.o.d"
  "libh3cdn_browser.a"
  "libh3cdn_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h3cdn_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
