file(REMOVE_RECURSE
  "libh3cdn_browser.a"
)
