# Empty dependencies file for h3cdn_sim.
# This may be replaced when dependencies are built.
