file(REMOVE_RECURSE
  "CMakeFiles/h3cdn_sim.dir/simulator.cpp.o"
  "CMakeFiles/h3cdn_sim.dir/simulator.cpp.o.d"
  "libh3cdn_sim.a"
  "libh3cdn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h3cdn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
