file(REMOVE_RECURSE
  "libh3cdn_sim.a"
)
