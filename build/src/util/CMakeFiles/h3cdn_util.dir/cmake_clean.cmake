file(REMOVE_RECURSE
  "CMakeFiles/h3cdn_util.dir/fit.cpp.o"
  "CMakeFiles/h3cdn_util.dir/fit.cpp.o.d"
  "CMakeFiles/h3cdn_util.dir/json.cpp.o"
  "CMakeFiles/h3cdn_util.dir/json.cpp.o.d"
  "CMakeFiles/h3cdn_util.dir/json_parse.cpp.o"
  "CMakeFiles/h3cdn_util.dir/json_parse.cpp.o.d"
  "CMakeFiles/h3cdn_util.dir/rng.cpp.o"
  "CMakeFiles/h3cdn_util.dir/rng.cpp.o.d"
  "CMakeFiles/h3cdn_util.dir/stats.cpp.o"
  "CMakeFiles/h3cdn_util.dir/stats.cpp.o.d"
  "CMakeFiles/h3cdn_util.dir/table.cpp.o"
  "CMakeFiles/h3cdn_util.dir/table.cpp.o.d"
  "libh3cdn_util.a"
  "libh3cdn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h3cdn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
