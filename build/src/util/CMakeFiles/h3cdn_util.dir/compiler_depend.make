# Empty compiler generated dependencies file for h3cdn_util.
# This may be replaced when dependencies are built.
