file(REMOVE_RECURSE
  "libh3cdn_util.a"
)
