file(REMOVE_RECURSE
  "CMakeFiles/h3cdn_dns.dir/cache.cpp.o"
  "CMakeFiles/h3cdn_dns.dir/cache.cpp.o.d"
  "CMakeFiles/h3cdn_dns.dir/resolver.cpp.o"
  "CMakeFiles/h3cdn_dns.dir/resolver.cpp.o.d"
  "libh3cdn_dns.a"
  "libh3cdn_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h3cdn_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
