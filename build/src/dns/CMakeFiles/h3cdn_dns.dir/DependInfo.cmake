
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/cache.cpp" "src/dns/CMakeFiles/h3cdn_dns.dir/cache.cpp.o" "gcc" "src/dns/CMakeFiles/h3cdn_dns.dir/cache.cpp.o.d"
  "/root/repo/src/dns/resolver.cpp" "src/dns/CMakeFiles/h3cdn_dns.dir/resolver.cpp.o" "gcc" "src/dns/CMakeFiles/h3cdn_dns.dir/resolver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/h3cdn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/h3cdn_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/h3cdn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
