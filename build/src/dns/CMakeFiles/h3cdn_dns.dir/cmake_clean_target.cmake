file(REMOVE_RECURSE
  "libh3cdn_dns.a"
)
