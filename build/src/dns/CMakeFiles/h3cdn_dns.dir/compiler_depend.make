# Empty compiler generated dependencies file for h3cdn_dns.
# This may be replaced when dependencies are built.
