file(REMOVE_RECURSE
  "CMakeFiles/h3cdn_cdn.dir/edge_server.cpp.o"
  "CMakeFiles/h3cdn_cdn.dir/edge_server.cpp.o.d"
  "CMakeFiles/h3cdn_cdn.dir/lru_cache.cpp.o"
  "CMakeFiles/h3cdn_cdn.dir/lru_cache.cpp.o.d"
  "CMakeFiles/h3cdn_cdn.dir/origin_server.cpp.o"
  "CMakeFiles/h3cdn_cdn.dir/origin_server.cpp.o.d"
  "CMakeFiles/h3cdn_cdn.dir/provider.cpp.o"
  "CMakeFiles/h3cdn_cdn.dir/provider.cpp.o.d"
  "libh3cdn_cdn.a"
  "libh3cdn_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h3cdn_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
