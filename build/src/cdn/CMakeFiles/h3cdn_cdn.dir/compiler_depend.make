# Empty compiler generated dependencies file for h3cdn_cdn.
# This may be replaced when dependencies are built.
