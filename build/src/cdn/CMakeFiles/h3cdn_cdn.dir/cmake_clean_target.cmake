file(REMOVE_RECURSE
  "libh3cdn_cdn.a"
)
