# Empty dependencies file for h3cdn_transport.
# This may be replaced when dependencies are built.
