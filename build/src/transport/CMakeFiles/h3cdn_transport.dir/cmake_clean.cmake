file(REMOVE_RECURSE
  "CMakeFiles/h3cdn_transport.dir/congestion.cpp.o"
  "CMakeFiles/h3cdn_transport.dir/congestion.cpp.o.d"
  "CMakeFiles/h3cdn_transport.dir/connection.cpp.o"
  "CMakeFiles/h3cdn_transport.dir/connection.cpp.o.d"
  "CMakeFiles/h3cdn_transport.dir/rtt_estimator.cpp.o"
  "CMakeFiles/h3cdn_transport.dir/rtt_estimator.cpp.o.d"
  "libh3cdn_transport.a"
  "libh3cdn_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h3cdn_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
