
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/congestion.cpp" "src/transport/CMakeFiles/h3cdn_transport.dir/congestion.cpp.o" "gcc" "src/transport/CMakeFiles/h3cdn_transport.dir/congestion.cpp.o.d"
  "/root/repo/src/transport/connection.cpp" "src/transport/CMakeFiles/h3cdn_transport.dir/connection.cpp.o" "gcc" "src/transport/CMakeFiles/h3cdn_transport.dir/connection.cpp.o.d"
  "/root/repo/src/transport/rtt_estimator.cpp" "src/transport/CMakeFiles/h3cdn_transport.dir/rtt_estimator.cpp.o" "gcc" "src/transport/CMakeFiles/h3cdn_transport.dir/rtt_estimator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/h3cdn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/h3cdn_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/h3cdn_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/h3cdn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/h3cdn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
