file(REMOVE_RECURSE
  "libh3cdn_transport.a"
)
