file(REMOVE_RECURSE
  "CMakeFiles/h3cdn_web.dir/domains.cpp.o"
  "CMakeFiles/h3cdn_web.dir/domains.cpp.o.d"
  "CMakeFiles/h3cdn_web.dir/headers.cpp.o"
  "CMakeFiles/h3cdn_web.dir/headers.cpp.o.d"
  "CMakeFiles/h3cdn_web.dir/resource.cpp.o"
  "CMakeFiles/h3cdn_web.dir/resource.cpp.o.d"
  "CMakeFiles/h3cdn_web.dir/workload.cpp.o"
  "CMakeFiles/h3cdn_web.dir/workload.cpp.o.d"
  "CMakeFiles/h3cdn_web.dir/workload_io.cpp.o"
  "CMakeFiles/h3cdn_web.dir/workload_io.cpp.o.d"
  "libh3cdn_web.a"
  "libh3cdn_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h3cdn_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
