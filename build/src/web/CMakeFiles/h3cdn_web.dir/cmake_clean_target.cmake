file(REMOVE_RECURSE
  "libh3cdn_web.a"
)
