
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/web/domains.cpp" "src/web/CMakeFiles/h3cdn_web.dir/domains.cpp.o" "gcc" "src/web/CMakeFiles/h3cdn_web.dir/domains.cpp.o.d"
  "/root/repo/src/web/headers.cpp" "src/web/CMakeFiles/h3cdn_web.dir/headers.cpp.o" "gcc" "src/web/CMakeFiles/h3cdn_web.dir/headers.cpp.o.d"
  "/root/repo/src/web/resource.cpp" "src/web/CMakeFiles/h3cdn_web.dir/resource.cpp.o" "gcc" "src/web/CMakeFiles/h3cdn_web.dir/resource.cpp.o.d"
  "/root/repo/src/web/workload.cpp" "src/web/CMakeFiles/h3cdn_web.dir/workload.cpp.o" "gcc" "src/web/CMakeFiles/h3cdn_web.dir/workload.cpp.o.d"
  "/root/repo/src/web/workload_io.cpp" "src/web/CMakeFiles/h3cdn_web.dir/workload_io.cpp.o" "gcc" "src/web/CMakeFiles/h3cdn_web.dir/workload_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cdn/CMakeFiles/h3cdn_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/h3cdn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/h3cdn_http.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/h3cdn_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/h3cdn_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/h3cdn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/h3cdn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/h3cdn_tls.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
