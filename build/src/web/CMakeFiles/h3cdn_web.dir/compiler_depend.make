# Empty compiler generated dependencies file for h3cdn_web.
# This may be replaced when dependencies are built.
