file(REMOVE_RECURSE
  "CMakeFiles/h3cdn_net.dir/link.cpp.o"
  "CMakeFiles/h3cdn_net.dir/link.cpp.o.d"
  "CMakeFiles/h3cdn_net.dir/path.cpp.o"
  "CMakeFiles/h3cdn_net.dir/path.cpp.o.d"
  "libh3cdn_net.a"
  "libh3cdn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h3cdn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
