file(REMOVE_RECURSE
  "libh3cdn_net.a"
)
