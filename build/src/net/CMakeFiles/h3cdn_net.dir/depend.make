# Empty dependencies file for h3cdn_net.
# This may be replaced when dependencies are built.
