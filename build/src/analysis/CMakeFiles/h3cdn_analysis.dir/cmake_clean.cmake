file(REMOVE_RECURSE
  "CMakeFiles/h3cdn_analysis.dir/bootstrap.cpp.o"
  "CMakeFiles/h3cdn_analysis.dir/bootstrap.cpp.o.d"
  "CMakeFiles/h3cdn_analysis.dir/grouping.cpp.o"
  "CMakeFiles/h3cdn_analysis.dir/grouping.cpp.o.d"
  "CMakeFiles/h3cdn_analysis.dir/kmeans.cpp.o"
  "CMakeFiles/h3cdn_analysis.dir/kmeans.cpp.o.d"
  "CMakeFiles/h3cdn_analysis.dir/page_metrics.cpp.o"
  "CMakeFiles/h3cdn_analysis.dir/page_metrics.cpp.o.d"
  "libh3cdn_analysis.a"
  "libh3cdn_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h3cdn_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
