# Empty dependencies file for h3cdn_analysis.
# This may be replaced when dependencies are built.
