file(REMOVE_RECURSE
  "libh3cdn_analysis.a"
)
