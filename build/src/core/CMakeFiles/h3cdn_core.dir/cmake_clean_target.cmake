file(REMOVE_RECURSE
  "libh3cdn_core.a"
)
