file(REMOVE_RECURSE
  "CMakeFiles/h3cdn_core.dir/experiments.cpp.o"
  "CMakeFiles/h3cdn_core.dir/experiments.cpp.o.d"
  "CMakeFiles/h3cdn_core.dir/export.cpp.o"
  "CMakeFiles/h3cdn_core.dir/export.cpp.o.d"
  "CMakeFiles/h3cdn_core.dir/report.cpp.o"
  "CMakeFiles/h3cdn_core.dir/report.cpp.o.d"
  "CMakeFiles/h3cdn_core.dir/selector.cpp.o"
  "CMakeFiles/h3cdn_core.dir/selector.cpp.o.d"
  "CMakeFiles/h3cdn_core.dir/study.cpp.o"
  "CMakeFiles/h3cdn_core.dir/study.cpp.o.d"
  "libh3cdn_core.a"
  "libh3cdn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h3cdn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
