# Empty compiler generated dependencies file for h3cdn_core.
# This may be replaced when dependencies are built.
