# Empty dependencies file for h3cdn_har_inspect.
# This may be replaced when dependencies are built.
