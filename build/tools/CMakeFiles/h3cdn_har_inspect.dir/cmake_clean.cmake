file(REMOVE_RECURSE
  "CMakeFiles/h3cdn_har_inspect.dir/h3cdn_har_inspect.cpp.o"
  "CMakeFiles/h3cdn_har_inspect.dir/h3cdn_har_inspect.cpp.o.d"
  "h3cdn_har_inspect"
  "h3cdn_har_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h3cdn_har_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
