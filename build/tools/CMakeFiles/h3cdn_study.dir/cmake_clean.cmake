file(REMOVE_RECURSE
  "CMakeFiles/h3cdn_study.dir/h3cdn_study.cpp.o"
  "CMakeFiles/h3cdn_study.dir/h3cdn_study.cpp.o.d"
  "h3cdn_study"
  "h3cdn_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h3cdn_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
