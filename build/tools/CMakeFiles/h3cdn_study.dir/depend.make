# Empty dependencies file for h3cdn_study.
# This may be replaced when dependencies are built.
